package dego

import "cmp"

// An Option declares one aspect of how a program will use a shared object.
// The profile constructors (Counter, Map, Set, Ordered, Queue, Ref) fold
// their options into a usage profile and hand it to the planner, which picks
// the representation — callers say what they do, not which data structure
// they want. Options divide into
//
//   - interface narrowings: Blind, WriteOnce — give up part of the base
//     interface (return values, re-initialization);
//   - access restrictions: SingleWriter, SingleReader, CommutingWriters —
//     promise which threads call what;
//   - adaptivity: Adaptive — ask for a representation that switches itself
//     under measured contention;
//   - context and tuning: On, Checked, WithHash, WithProbe, Capacity,
//     Stripes, Buckets, Fenced — they size or instrument whatever the
//     planner picks, and never change which object is declared.
//
// Narrowings, restrictions and granularities that do not exist for a
// datatype (WriteOnce on a map, Fenced on a counter, Checked on a plan
// with no guard) make the whole profile invalid: the constructor returns
// an error wrapping ErrInvalidProfile rather than guessing what was meant.
// The sizing options (Capacity, Stripes, Buckets) are likewise rejected on
// datatypes they can never size (queues, references); on the sized
// datatypes they are hints, consumed where the planned representation has
// the corresponding knob and harmlessly unused where it does not (e.g.
// Capacity on an unrestricted Ordered plan — the lock-free list has no
// preallocation).
type Option func(*profile)

// An AdaptiveOption tunes the Adaptive declaration.
type AdaptiveOption func(*profile)

// On places the object on a specific registry; without it the process-wide
// default registry is used. Representations that never route by thread
// identity (striped and lock-free baselines, atomic cells) ignore it.
func On(r *Registry) Option { return func(p *profile) { p.registry = r } }

// Checked enables the planned representation's runtime permission guard:
// violations of the declared access restriction panic instead of silently
// corrupting. Valid only when the planned representation carries a guard
// (the handle-routed adjusted representations do; the any-thread baselines
// have nothing to check).
func Checked() Option { return func(p *profile) { p.checked = true } }

// Blind declares that write operations need not return information about
// the previous state (the r-arrows of Figure 3: a voided postcondition).
// For counters this is the C2→C3 step that unlocks the striped and
// per-thread cell representations — an increment that must return the new
// value is inherently a read-modify-write on shared state.
func Blind() Option { return func(p *profile) { p.blind = true } }

// WriteOnce declares the reference is initialized at most once (the
// p-arrow R1→R2: set's precondition strengthens to "unset"). Applies to
// Ref only.
func WriteOnce() Option { return func(p *profile) { p.writeOnce = true } }

// SingleWriter declares that one thread performs every write (SWMR).
func SingleWriter() Option { return func(p *profile) { p.singleWriter = true } }

// SingleReader declares that one thread performs every read (MWSR; with
// CommutingWriters, CWSR).
func SingleReader() Option { return func(p *profile) { p.singleReader = true } }

// CommutingWriters declares that concurrent writes by distinct threads
// commute — e.g. they target distinct keys (CWMR; with SingleReader, CWSR).
// This is the contract that makes the extended segmentations sound, and it
// must hold for the object's whole lifetime.
func CommutingWriters() Option { return func(p *profile) { p.commuting = true } }

// Adaptive asks for a contention-adaptive representation: the unadjusted
// one until the windowed stall rate says otherwise, the adjusted one while
// contention lasts. The declared access restriction must still hold in
// every state — adaptivity changes the representation, never the contract.
func Adaptive(opts ...AdaptiveOption) Option {
	return func(p *profile) {
		p.adaptive = true
		for _, o := range opts {
			o(p)
		}
	}
}

// WithPolicy overrides the adaptive switching policy (thresholds, window
// sizes, range count).
func WithPolicy(pol AdaptivePolicy) AdaptiveOption {
	return func(p *profile) { p.policy, p.policySet = pol, true }
}

// Ranges splits a hash-keyed adaptive object (Map, Set) into n hash-prefix
// ranges that promote and demote independently, so a hot range pays the
// adjusted representation while cold ranges keep single-lookup reads.
// Ordered objects take Fenced instead — hash-prefix buckets would scatter
// adjacent keys and break ordered iteration.
func Ranges(n int) AdaptiveOption { return func(p *profile) { p.ranges = n } }

// Fenced splits an adaptive ordered object's key space at the given keys:
// len(keys)+1 contiguous intervals, each adjusting independently, whose
// concatenation keeps global iteration sorted. Keys must be strictly
// increasing. Applies to Ordered with Adaptive only.
func Fenced[K cmp.Ordered](keys ...K) Option {
	return func(p *profile) { p.fences = append([]K(nil), keys...) }
}

// WithHash supplies the key hash for keyed objects. Optional for built-in
// integer and string key types, which get the library's default hashers
// (Hash64 / HashString); required for every other key type.
func WithHash[K comparable](f func(K) uint64) Option {
	return func(p *profile) { p.hash = f }
}

// WithProbe attaches a contention probe to representations that accept
// external instrumentation (the lock- and CAS-based baselines). Adaptive
// representations carry their own probe regardless — read it from the
// constructed object. Advisory: representations with nothing to record
// ignore it.
func WithProbe(pr *Probe) Option { return func(p *profile) { p.probe = pr } }

// Capacity sizes the object: hash-table capacity for maps and sets, the
// cell count for blind ALL-mode counters, the segment-directory default
// for commuting Ordered plans. Defaults are workload-neutral (1024
// entries; one cell per CPU). A hint: plans whose representation has no
// preallocation (per-thread counter cells, the lock-free and SWMR skip
// lists) leave it unused.
func Capacity(n int) Option { return func(p *profile) { p.capacity = n } }

// Stripes sizes the lock-stripe array of the striped representations
// (default 256). Applies to Map and Set; a hint on plans without a striped
// representation (SWMR, segmented).
func Stripes(n int) Option { return func(p *profile) { p.stripes = n } }

// Buckets sizes the segment directory of the extended segmentations
// (default: twice the capacity). Applies to Map, Set and Ordered; a hint
// on plans without a segment directory.
func Buckets(n int) Option { return func(p *profile) { p.buckets = n } }

// WithUsageRecording attaches a usage recorder to the constructed object:
// every wrapper operation is counted — per method, per thread slot (via
// handle IDs), per key — so Advise can later infer the most adjusted
// profile the observed usage would have permitted, certified against
// Definition 1. The intended use is the tuning loop: construct the object
// with no adjustment declared but recording on, replay a representative
// workload, and move what Advise recommends into the declaration.
//
// Recording is allocation-free per operation but not free (a few atomic
// adds per call, and keyed objects hash every written key a second time),
// so it is a replay/profiling mode, not a steady-state default. Objects
// built without this option carry no recorder and pay one nil check per
// operation. Keyed objects whose key type has no default hasher need
// WithHash for recording too (named integer key types hash through the
// flat family's codec automatically).
func WithUsageRecording() Option { return func(p *profile) { p.record = true } }

// Must unwraps a profile-constructor result, panicking on error. For
// program-shaped profiles that cannot be invalid — typically package-level
// construction where the profile is a literal.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
