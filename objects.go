package dego

import (
	"cmp"
	"runtime"

	"github.com/adjusted-objects/dego/internal/adaptive"
	"github.com/adjusted-objects/dego/internal/counter"
	"github.com/adjusted-objects/dego/internal/flatmap"
	"github.com/adjusted-objects/dego/internal/hashmap"
	"github.com/adjusted-objects/dego/internal/queue"
	"github.com/adjusted-objects/dego/internal/ref"
	"github.com/adjusted-objects/dego/internal/set"
	"github.com/adjusted-objects/dego/internal/skiplist"
	"github.com/adjusted-objects/dego/internal/usage"
)

// This file holds the profile constructors: Counter, Map, Set, Ordered,
// Queue and Ref take a declared usage profile (functional options) and plan
// the representation, instead of making the caller name one of the ~25
// representation-specific constructors. Each constructor
//
//  1. folds its options into a profile and rejects inapplicable ones,
//  2. resolves the declared §4.2 mode,
//  3. picks the most adjusted representation whose contract the declared
//     profile satisfies (the planner proper),
//  4. cross-checks the declared Table 1 object against the executable
//     Definition 1 (internal/spec) before constructing,
//
// and returns an Adjusted* wrapper exposing the narrowed interface, the
// Plan that was made, and — for audits, benchmarks and migrations — the
// underlying representation.

// ---------------------------------------------------------------------------
// Counter

// counterRep is the planner's view of a counter representation.
type counterRep interface {
	Inc(h *Handle)
	Add(h *Handle, delta int64)
	Get(h *Handle) int64
}

// atomicCounterRep adapts the handle-free atomic baseline.
type atomicCounterRep struct{ a *counter.Atomic }

func (r atomicCounterRep) Inc(*Handle)                { r.a.IncrementAndGet() }
func (r atomicCounterRep) Add(_ *Handle, delta int64) { r.a.AddAndGet(delta) }
func (r atomicCounterRep) Get(*Handle) int64          { return r.a.Get() }

// adderCounterRep adapts the striped adder (reads sum every cell, any
// thread).
type adderCounterRep struct{ a *counter.Adder }

func (r adderCounterRep) Inc(h *Handle)              { r.a.Inc(h) }
func (r adderCounterRep) Add(h *Handle, delta int64) { r.a.Add(h, delta) }
func (r adderCounterRep) Get(*Handle) int64          { return r.a.Sum() }

// AdjustedCounter is a counter built from a declared profile. Its interface
// is the narrowed one every dego counter representation shares — blind
// increments, a read — so the planner may substitute any representation the
// declaration permits.
type AdjustedCounter struct {
	plan  Plan
	rep   counterRep
	raw   any
	ad    *AdaptiveCounter
	probe *Probe
	rec   *usage.Recorder
}

// Inc adds one.
func (c *AdjustedCounter) Inc(h *Handle) {
	if c.rec != nil {
		c.rec.RecordWrite(usage.MethodInc, usage.SlotOf(h), usage.UnkeyedKey)
	}
	c.rep.Inc(h)
}

// Add adds delta (non-negative: dego counters are increment-only).
func (c *AdjustedCounter) Add(h *Handle, delta int64) {
	if c.rec != nil {
		c.rec.RecordWrite(usage.MethodAdd, usage.SlotOf(h), usage.UnkeyedKey)
	}
	c.rep.Add(h, delta)
}

// Get returns the current count. Under a SingleReader declaration only the
// declared reader may call it.
func (c *AdjustedCounter) Get(h *Handle) int64 {
	if c.rec != nil {
		c.rec.RecordRead(usage.MethodGet, usage.SlotOf(h))
	}
	return c.rep.Get(h)
}

// Plan returns the planner's decision for this object.
func (c *AdjustedCounter) Plan() Plan { return c.plan }

// Adaptive returns the underlying contention-adaptive counter when the
// profile declared Adaptive, else nil.
func (c *AdjustedCounter) Adaptive() *AdaptiveCounter { return c.ad }

// Representation returns the underlying representation (e.g.
// *dego.AtomicCounter, *dego.Adder) for audits and rep-specific access.
func (c *AdjustedCounter) Representation() any { return c.raw }

// Probe returns the contention probe observing this object: the adaptive
// probe when planned adaptive, else the WithProbe one (possibly nil).
func (c *AdjustedCounter) Probe() *Probe {
	if c.ad != nil {
		return c.ad.Probe()
	}
	return c.probe
}

// Advise infers the most adjusted counter profile the recorded usage
// permits, certified against Definition 1. ok is false when the object
// was constructed without WithUsageRecording.
func (c *AdjustedCounter) Advise() (Advice, bool) { return adviseObject(c.plan, c.rec) }

// Counter builds a counter from a declared usage profile.
//
// Planning: without Blind the increment conceptually returns the new value
// (C2), which forces the shared atomic cell. Blind (C3) unlocks the striped
// adder; Blind with a single declared reader (CWSR — counter writes always
// commute, so SingleReader alone suffices) unlocks the per-thread cells of
// the paper's (C3, CWSR) object; Adaptive on that profile switches between
// the atomic cell and the cells under measured contention.
func Counter(opts ...Option) (*AdjustedCounter, error) {
	const dt = "Counter"
	p := &profile{}
	p.apply(opts)
	if p.writeOnce {
		return nil, invalid(dt, "WriteOnce narrows references (R1→R2), not counters")
	}
	if p.fences != nil {
		return nil, invalid(dt, "Fenced applies to adaptive Ordered objects")
	}
	if p.hash != nil {
		return nil, invalid(dt, "counters are unkeyed; WithHash does not apply")
	}
	if p.stripes > 0 {
		return nil, invalid(dt, "Stripes applies to Map and Set; size blind counter cells with Capacity")
	}
	if p.buckets > 0 {
		return nil, invalid(dt, "Buckets applies to Map, Set and Ordered")
	}
	mode, err := p.mode(dt)
	if err != nil {
		return nil, err
	}
	// Counter writes (inc, add) commute by the datatype, so a declared
	// single reader is the full CWSR adjustment even without
	// CommutingWriters.
	if mode == ModeMWSR {
		mode = ModeCWSR
	}

	c := &AdjustedCounter{plan: Plan{Datatype: dt, Mode: mode}, probe: p.probe}
	switch {
	case p.adaptive:
		if !p.blind {
			return nil, invalid(dt, "the adaptive counter is increment-only: declare Blind")
		}
		if mode != ModeCWSR {
			return nil, invalid(dt, "the adaptive counter promotes to per-thread cells with one reader: declare SingleReader (CWSR), not %s", mode)
		}
		if p.checked {
			return nil, invalid(dt, "the adaptive counter has no runtime guard; drop Checked")
		}
		c.ad = adaptive.NewCounter(p.reg(), p.resolvedPolicy())
		c.rep, c.raw = c.ad, c.ad
		c.plan.Variant, c.plan.Rep, c.plan.Adaptive = "C3", "AdaptiveCounter", true
	case p.blind && mode == ModeCWSR:
		rep := counter.NewIncrementOnly(p.reg(), p.checked)
		c.rep, c.raw = rep, rep
		c.plan.Variant, c.plan.Rep = "C3", "IncrementOnlyCounter"
	case p.blind && mode == ModeCWMR && p.capacity > 0 && p.probe == nil && !p.checked:
		// The flat counter: a blind, commuting profile that declared its
		// cell capacity and no probe gets preallocated padded cells with a
		// wait-free atomic add — no CAS retry loop. The unrestricted blind
		// profile keeps the Adder below (its CAS loop is also the
		// contention instrument WithProbe observes).
		rep := flatmap.NewCounter(p.capacity)
		c.rep, c.raw = flatCounterRep{rep}, rep
		c.plan.Variant, c.plan.Rep = "C3", "FlatCounter"
	case p.blind && mode != ModeSWMR:
		if p.checked {
			return nil, invalid(dt, "the striped adder has no runtime guard; drop Checked")
		}
		rep := counter.NewAdder(p.capacityOr(runtime.GOMAXPROCS(0)), p.probe)
		c.rep, c.raw = adderCounterRep{rep}, rep
		c.plan.Variant, c.plan.Rep = "C3", "Adder"
	default:
		// Un-blind profiles (and a blind single writer, where a plain cell
		// is already uncontended) get the atomic baseline.
		if p.checked {
			return nil, invalid(dt, "the atomic counter has no runtime guard; drop Checked")
		}
		rep := counter.NewAtomic(p.probe)
		c.rep, c.raw = atomicCounterRep{rep}, rep
		c.plan.Variant, c.plan.Rep = "C2", "AtomicCounter"
		if p.blind {
			c.plan.Variant = "C3"
		}
	}
	if err := c.plan.validate(); err != nil {
		return nil, err
	}
	if p.record {
		c.rec = usage.NewRecorderKeys(p.reg(), 4)
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// Map

// mapRep is the planner's view of a hash-map representation. The segmented,
// SWMR and adaptive maps satisfy it directly; the striped baseline is
// adapted (it routes by lock, not by thread identity, and ignores the
// handle).
type mapRep[K comparable, V any] interface {
	Put(h *Handle, key K, val V)
	Get(key K) (V, bool)
	Remove(h *Handle, key K) bool
	Contains(key K) bool
	Len() int
	Range(f func(key K, val V) bool)
}

type stripedMapRep[K comparable, V any] struct{ m *hashmap.Striped[K, V] }

func (r stripedMapRep[K, V]) Put(_ *Handle, k K, v V)    { r.m.Put(k, v) }
func (r stripedMapRep[K, V]) Get(k K) (V, bool)          { return r.m.Get(k) }
func (r stripedMapRep[K, V]) Remove(_ *Handle, k K) bool { return r.m.Remove(k) }
func (r stripedMapRep[K, V]) Contains(k K) bool          { return r.m.Contains(k) }
func (r stripedMapRep[K, V]) Len() int                   { return r.m.Len() }
func (r stripedMapRep[K, V]) Range(f func(K, V) bool)    { r.m.Range(f) }

// AdjustedMap is a hash map built from a declared profile. Writes are
// handle-routed (representations that do not route by thread ignore the
// handle), reads are unrestricted unless the profile says otherwise.
type AdjustedMap[K comparable, V any] struct {
	plan    Plan
	rep     mapRep[K, V]
	raw     any
	ad      *AdaptiveMap[K, V]
	probe   *Probe
	rec     *usage.Recorder
	recHash func(K) uint64
}

// Put stores key → val.
func (m *AdjustedMap[K, V]) Put(h *Handle, key K, val V) {
	if m.rec != nil {
		m.rec.RecordWrite(usage.MethodPut, usage.SlotOf(h), m.recHash(key))
	}
	m.rep.Put(h, key, val)
}

// Get returns the value for key.
func (m *AdjustedMap[K, V]) Get(key K) (V, bool) {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodGet, usage.AnonSlot)
	}
	return m.rep.Get(key)
}

// Remove deletes key, reporting whether it was present.
func (m *AdjustedMap[K, V]) Remove(h *Handle, key K) bool {
	if m.rec != nil {
		m.rec.RecordWrite(usage.MethodRemove, usage.SlotOf(h), m.recHash(key))
	}
	return m.rep.Remove(h, key)
}

// Contains reports whether key is present.
func (m *AdjustedMap[K, V]) Contains(key K) bool {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodContains, usage.AnonSlot)
	}
	return m.rep.Contains(key)
}

// Len returns the entry count.
func (m *AdjustedMap[K, V]) Len() int {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodLen, usage.AnonSlot)
	}
	return m.rep.Len()
}

// Range iterates entries (no ordering guarantee) until f returns false.
func (m *AdjustedMap[K, V]) Range(f func(key K, val V) bool) {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodRange, usage.AnonSlot)
	}
	m.rep.Range(f)
}

// Plan returns the planner's decision for this object.
func (m *AdjustedMap[K, V]) Plan() Plan { return m.plan }

// Adaptive returns the underlying contention-adaptive map when the profile
// declared Adaptive, else nil.
func (m *AdjustedMap[K, V]) Adaptive() *AdaptiveMap[K, V] { return m.ad }

// Representation returns the underlying representation (e.g.
// *dego.SegmentedMap[K, V]).
func (m *AdjustedMap[K, V]) Representation() any { return m.raw }

// Probe returns the contention probe observing this object.
func (m *AdjustedMap[K, V]) Probe() *Probe {
	if m.ad != nil {
		return m.ad.Probe()
	}
	return m.probe
}

// Advise infers the most adjusted map profile the recorded usage permits,
// certified against Definition 1. ok is false when the object was
// constructed without WithUsageRecording. Map reads carry no handle, so
// reader restrictions are never inferred (no map representation exploits
// one anyway).
func (m *AdjustedMap[K, V]) Advise() (Advice, bool) { return adviseObject(m.plan, m.rec) }

// initRecording attaches the usage recorder when the profile asked for
// one; called after planning so the recorder never outlives a rejection.
func (m *AdjustedMap[K, V]) initRecording(dt string, p *profile) error {
	if !p.record {
		return nil
	}
	hash, err := recordHash[K](dt, p)
	if err != nil {
		return err
	}
	m.rec = usage.NewRecorderKeys(p.reg(), usageKeyCells(p.capacityOr(1024)))
	m.recHash = hash
	return nil
}

// Map builds a hash map from a declared usage profile.
//
// Planning: no restriction yields the lock-striped baseline (M1);
// SingleWriter yields the SWMR map; CommutingWriters yields the extended
// segmentation of the paper's (M2, CWMR) — with SingleReader too (CWSR, a
// stronger restriction the segmentation's contract also admits) the same
// representation serves; Adaptive on a commuting profile yields the
// contention-adaptive map (optionally split per-range with Ranges).
// Integer and string keys hash by default; other key types need WithHash.
func Map[K comparable, V any](opts ...Option) (*AdjustedMap[K, V], error) {
	const dt = "Map"
	p := &profile{}
	p.apply(opts)
	if p.writeOnce {
		return nil, invalid(dt, "WriteOnce narrows references (R1→R2), not maps")
	}
	if p.fences != nil {
		return nil, invalid(dt, "Fenced applies to adaptive Ordered objects; hash-keyed maps split with Adaptive(Ranges(n))")
	}
	mode, err := p.mode(dt)
	if err != nil {
		return nil, err
	}
	// The flat family gates before hash resolution: a flat table hashes
	// internally through the integer-key codec, so a named integer key
	// type (type UserID uint64) plans FLAT without a WithHash declaration
	// — while every node-based plan below still requires one.
	if enc, dec, ok := intKeyCodec[K](); ok && p.flatEligible() &&
		(mode == ModeSWMR || (!p.checked && mode != ModeMWSR)) {
		m := &AdjustedMap[K, V]{plan: Plan{Datatype: dt, Mode: mode, Ranges: 1}, probe: p.probe}
		if mode == ModeSWMR {
			rep := newFlatSWMRMap[K, V](enc, dec, p.capacity, p.checked)
			m.rep, m.raw = rep, rep
			m.plan.Variant, m.plan.Rep = "M2", "FlatSWMRMap"
		} else {
			rep := newFlatMap[K, V](enc, dec, p.capacity)
			m.rep, m.raw = rep, rep
			m.plan.Variant, m.plan.Rep = "M1", "FlatMap"
			if mode.CommutingWrites() || p.blind {
				m.plan.Variant = "M2"
			}
		}
		if err := m.plan.validate(); err != nil {
			return nil, err
		}
		if err := m.initRecording(dt, p); err != nil {
			return nil, err
		}
		return m, nil
	}
	hash, err := resolveHash[K](dt, p)
	if err != nil {
		return nil, err
	}
	capacity := p.capacityOr(1024)
	buckets := p.bucketsOr(capacity * 2)

	m := &AdjustedMap[K, V]{plan: Plan{Datatype: dt, Mode: mode, Ranges: 1}, probe: p.probe}
	switch {
	case p.adaptive:
		if !mode.CommutingWrites() {
			return nil, invalid(dt, "the adaptive map requires commuting writers in every state: declare CommutingWriters (CWMR), not %s", mode)
		}
		if p.checked {
			return nil, invalid(dt, "the adaptive map has no runtime guard; drop Checked")
		}
		pol := p.resolvedPolicy()
		m.ad = adaptive.NewMap[K, V](p.reg(), p.stripesOr(256), capacity, buckets, hash, pol)
		m.rep, m.raw = m.ad, m.ad
		m.plan.Variant, m.plan.Rep, m.plan.Adaptive = "M2", "AdaptiveMap", true
		m.plan.Ranges = m.ad.Ranges()
	case mode.CommutingWrites():
		rep := hashmap.NewSegmented[K, V](p.reg(), capacity, buckets, hash, p.checked)
		m.rep, m.raw = rep, rep
		m.plan.Variant, m.plan.Rep = "M2", "SegmentedMap"
	case mode == ModeSWMR:
		rep := hashmap.NewSWMR[K, V](capacity, hash, p.checked)
		m.rep, m.raw = rep, rep
		m.plan.Variant, m.plan.Rep = "M2", "SWMRMap"
	case mode == ModeAll:
		if p.checked {
			return nil, invalid(dt, "the striped map has no runtime guard; drop Checked")
		}
		rep := hashmap.NewStriped[K, V](p.stripesOr(256), capacity, hash, p.probe)
		m.rep, m.raw = stripedMapRep[K, V]{rep}, rep
		m.plan.Variant, m.plan.Rep = "M1", "StripedMap"
		if p.blind {
			m.plan.Variant = "M2"
		}
	default:
		return nil, invalid(dt, "no map representation exploits a single reader alone (declared %s); add CommutingWriters (CWSR) or drop SingleReader", mode)
	}
	if err := m.plan.validate(); err != nil {
		return nil, err
	}
	if err := m.initRecording(dt, p); err != nil {
		return nil, err
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Set

// setRep is the planner's view of a set representation.
type setRep[K comparable] interface {
	Add(h *Handle, x K)
	Remove(h *Handle, x K) bool
	Contains(x K) bool
	Len() int
	Range(f func(x K) bool)
}

type stripedSetRep[K comparable] struct{ s *set.Striped[K] }

func (r stripedSetRep[K]) Add(_ *Handle, x K)         { r.s.Add(x) }
func (r stripedSetRep[K]) Remove(_ *Handle, x K) bool { return r.s.Remove(x) }
func (r stripedSetRep[K]) Contains(x K) bool          { return r.s.Contains(x) }
func (r stripedSetRep[K]) Len() int                   { return r.s.Len() }
func (r stripedSetRep[K]) Range(f func(K) bool)       { r.s.Range(f) }

// AdjustedSet is a membership set built from a declared profile.
type AdjustedSet[K comparable] struct {
	plan    Plan
	rep     setRep[K]
	raw     any
	ad      *AdaptiveSet[K]
	probe   *Probe
	rec     *usage.Recorder
	recHash func(K) uint64
}

// Add inserts x.
func (s *AdjustedSet[K]) Add(h *Handle, x K) {
	if s.rec != nil {
		s.rec.RecordWrite(usage.MethodAdd, usage.SlotOf(h), s.recHash(x))
	}
	s.rep.Add(h, x)
}

// Remove deletes x, reporting whether it was present.
func (s *AdjustedSet[K]) Remove(h *Handle, x K) bool {
	if s.rec != nil {
		s.rec.RecordWrite(usage.MethodRemove, usage.SlotOf(h), s.recHash(x))
	}
	return s.rep.Remove(h, x)
}

// Contains reports membership.
func (s *AdjustedSet[K]) Contains(x K) bool {
	if s.rec != nil {
		s.rec.RecordRead(usage.MethodContains, usage.AnonSlot)
	}
	return s.rep.Contains(x)
}

// Len returns the element count.
func (s *AdjustedSet[K]) Len() int {
	if s.rec != nil {
		s.rec.RecordRead(usage.MethodLen, usage.AnonSlot)
	}
	return s.rep.Len()
}

// Range iterates elements until f returns false.
func (s *AdjustedSet[K]) Range(f func(x K) bool) {
	if s.rec != nil {
		s.rec.RecordRead(usage.MethodRange, usage.AnonSlot)
	}
	s.rep.Range(f)
}

// Plan returns the planner's decision for this object.
func (s *AdjustedSet[K]) Plan() Plan { return s.plan }

// Adaptive returns the underlying contention-adaptive set when the profile
// declared Adaptive, else nil.
func (s *AdjustedSet[K]) Adaptive() *AdaptiveSet[K] { return s.ad }

// Representation returns the underlying representation.
func (s *AdjustedSet[K]) Representation() any { return s.raw }

// Probe returns the contention probe observing this object.
func (s *AdjustedSet[K]) Probe() *Probe {
	if s.ad != nil {
		return s.ad.Probe()
	}
	return s.probe
}

// Advise infers the most adjusted set profile the recorded usage permits,
// certified against Definition 1. ok is false when the object was
// constructed without WithUsageRecording.
func (s *AdjustedSet[K]) Advise() (Advice, bool) { return adviseObject(s.plan, s.rec) }

// initRecording attaches the usage recorder when the profile asked for one.
func (s *AdjustedSet[K]) initRecording(dt string, p *profile) error {
	if !p.record {
		return nil
	}
	hash, err := recordHash[K](dt, p)
	if err != nil {
		return err
	}
	s.rec = usage.NewRecorderKeys(p.reg(), usageKeyCells(p.capacityOr(1024)))
	s.recHash = hash
	return nil
}

// Set builds a membership set from a declared usage profile. Planning
// follows Map: unrestricted → striped baseline (S1); SingleWriter → SWMR
// (S2); CommutingWriters → the segmented set of the paper's (S3, CWMR)
// node; Adaptive on the commuting profile → the adaptive set.
func Set[K comparable](opts ...Option) (*AdjustedSet[K], error) {
	const dt = "Set"
	p := &profile{}
	p.apply(opts)
	if p.writeOnce {
		return nil, invalid(dt, "WriteOnce narrows references (R1→R2), not sets")
	}
	if p.fences != nil {
		return nil, invalid(dt, "Fenced applies to adaptive Ordered objects; hash-keyed sets split with Adaptive(Ranges(n))")
	}
	mode, err := p.mode(dt)
	if err != nil {
		return nil, err
	}
	// Flat gate, as in Map: integer-kind element type + Capacity, before
	// hash resolution (flat sets hash internally via the codec).
	if enc, dec, ok := intKeyCodec[K](); ok && p.flatEligible() &&
		(mode == ModeSWMR || (!p.checked && mode != ModeMWSR)) {
		s := &AdjustedSet[K]{plan: Plan{Datatype: dt, Mode: mode, Ranges: 1}, probe: p.probe}
		if mode == ModeSWMR {
			rep := newFlatSWMRSet[K](enc, dec, p.capacity, p.checked)
			s.rep, s.raw = rep, rep
			s.plan.Variant, s.plan.Rep = "S2", "FlatSWMRSet"
		} else {
			rep := newFlatSet[K](enc, dec, p.capacity)
			s.rep, s.raw = rep, rep
			s.plan.Variant, s.plan.Rep = "S1", "FlatSet"
			if mode.CommutingWrites() {
				s.plan.Variant = "S3"
			} else if p.blind {
				s.plan.Variant = "S2"
			}
		}
		if err := s.plan.validate(); err != nil {
			return nil, err
		}
		if err := s.initRecording(dt, p); err != nil {
			return nil, err
		}
		return s, nil
	}
	hash, err := resolveHash[K](dt, p)
	if err != nil {
		return nil, err
	}
	capacity := p.capacityOr(1024)
	buckets := p.bucketsOr(capacity * 2)

	s := &AdjustedSet[K]{plan: Plan{Datatype: dt, Mode: mode, Ranges: 1}, probe: p.probe}
	switch {
	case p.adaptive:
		if !mode.CommutingWrites() {
			return nil, invalid(dt, "the adaptive set requires commuting writers in every state: declare CommutingWriters (CWMR), not %s", mode)
		}
		if p.checked {
			return nil, invalid(dt, "the adaptive set has no runtime guard; drop Checked")
		}
		pol := p.resolvedPolicy()
		s.ad = adaptive.NewSet[K](p.reg(), p.stripesOr(256), capacity, buckets, hash, pol)
		s.rep, s.raw = s.ad, s.ad
		s.plan.Variant, s.plan.Rep, s.plan.Adaptive = "S3", "AdaptiveSet", true
		s.plan.Ranges = s.ad.Ranges()
	case mode.CommutingWrites():
		rep := set.NewSegmented[K](p.reg(), capacity, buckets, hash, p.checked)
		s.rep, s.raw = rep, rep
		s.plan.Variant, s.plan.Rep = "S3", "SegmentedSet"
	case mode == ModeSWMR:
		rep := set.NewSWMR[K](capacity, hash, p.checked)
		s.rep, s.raw = rep, rep
		s.plan.Variant, s.plan.Rep = "S2", "SWMRSet"
	case mode == ModeAll:
		if p.checked {
			return nil, invalid(dt, "the striped set has no runtime guard; drop Checked")
		}
		rep := set.NewStriped[K](p.stripesOr(256), capacity, hash, p.probe)
		s.rep, s.raw = stripedSetRep[K]{rep}, rep
		s.plan.Variant, s.plan.Rep = "S1", "StripedSet"
		if p.blind {
			s.plan.Variant = "S2"
		}
	default:
		return nil, invalid(dt, "no set representation exploits a single reader alone (declared %s); add CommutingWriters (CWSR) or drop SingleReader", mode)
	}
	if err := s.plan.validate(); err != nil {
		return nil, err
	}
	if err := s.initRecording(dt, p); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Ordered

// orderedRep is the planner's view of an ordered-map representation.
type orderedRep[K cmp.Ordered, V any] interface {
	Put(h *Handle, key K, val V)
	Get(key K) (V, bool)
	Remove(h *Handle, key K) bool
	Contains(key K) bool
	Len() int
	Range(f func(key K, val V) bool)
	RangeFrom(from K, f func(key K, val V) bool)
}

// concurrentListRep adapts the handle-free lock-free baseline.
type concurrentListRep[K cmp.Ordered, V any] struct{ m *skiplist.Concurrent[K, V] }

func (r concurrentListRep[K, V]) Put(_ *Handle, k K, v V)             { r.m.Put(k, v) }
func (r concurrentListRep[K, V]) Get(k K) (V, bool)                   { return r.m.Get(k) }
func (r concurrentListRep[K, V]) Remove(_ *Handle, k K) bool          { return r.m.Remove(k) }
func (r concurrentListRep[K, V]) Contains(k K) bool                   { return r.m.Contains(k) }
func (r concurrentListRep[K, V]) Len() int                            { return r.m.Len() }
func (r concurrentListRep[K, V]) Range(f func(K, V) bool)             { r.m.Range(f) }
func (r concurrentListRep[K, V]) RangeFrom(from K, f func(K, V) bool) { r.m.RangeFrom(from, f) }

// swmrListRep adapts the SWMR skip list (its from-iteration is ref-based).
type swmrListRep[K cmp.Ordered, V any] struct{ m *skiplist.SWMR[K, V] }

func (r swmrListRep[K, V]) Put(h *Handle, k K, v V)    { r.m.Put(h, k, v) }
func (r swmrListRep[K, V]) Get(k K) (V, bool)          { return r.m.Get(k) }
func (r swmrListRep[K, V]) Remove(h *Handle, k K) bool { return r.m.Remove(h, k) }
func (r swmrListRep[K, V]) Contains(k K) bool          { return r.m.Contains(k) }
func (r swmrListRep[K, V]) Len() int                   { return r.m.Len() }
func (r swmrListRep[K, V]) Range(f func(K, V) bool)    { r.m.Range(f) }
func (r swmrListRep[K, V]) RangeFrom(from K, f func(K, V) bool) {
	r.m.RangeRefFrom(from, func(k K, v *V) bool { return f(k, *v) })
}

// AdjustedOrdered is an ordered map built from a declared profile. Ordered
// iteration is strictly ascending in every representation and state.
type AdjustedOrdered[K cmp.Ordered, V any] struct {
	plan    Plan
	rep     orderedRep[K, V]
	raw     any
	ad      *AdaptiveSkipList[K, V]
	probe   *Probe
	rec     *usage.Recorder
	recHash func(K) uint64
}

// Put stores key → val.
func (m *AdjustedOrdered[K, V]) Put(h *Handle, key K, val V) {
	if m.rec != nil {
		m.rec.RecordWrite(usage.MethodPut, usage.SlotOf(h), m.recHash(key))
	}
	m.rep.Put(h, key, val)
}

// Get returns the value for key.
func (m *AdjustedOrdered[K, V]) Get(key K) (V, bool) {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodGet, usage.AnonSlot)
	}
	return m.rep.Get(key)
}

// Remove deletes key, reporting whether it was present.
func (m *AdjustedOrdered[K, V]) Remove(h *Handle, key K) bool {
	if m.rec != nil {
		m.rec.RecordWrite(usage.MethodRemove, usage.SlotOf(h), m.recHash(key))
	}
	return m.rep.Remove(h, key)
}

// Contains reports whether key is present.
func (m *AdjustedOrdered[K, V]) Contains(key K) bool {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodContains, usage.AnonSlot)
	}
	return m.rep.Contains(key)
}

// Len returns the entry count.
func (m *AdjustedOrdered[K, V]) Len() int {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodLen, usage.AnonSlot)
	}
	return m.rep.Len()
}

// Range iterates all entries in ascending key order until f returns false.
func (m *AdjustedOrdered[K, V]) Range(f func(key K, val V) bool) {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodRange, usage.AnonSlot)
	}
	m.rep.Range(f)
}

// RangeFrom iterates entries with key ≥ from in ascending order.
func (m *AdjustedOrdered[K, V]) RangeFrom(from K, f func(key K, val V) bool) {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodRangeFrom, usage.AnonSlot)
	}
	m.rep.RangeFrom(from, f)
}

// RangeBetween iterates entries with from ≤ key < to in ascending order.
func (m *AdjustedOrdered[K, V]) RangeBetween(from, to K, f func(key K, val V) bool) {
	if m.rec != nil {
		m.rec.RecordRead(usage.MethodRangeFrom, usage.AnonSlot)
	}
	if m.ad != nil {
		m.ad.RangeBetween(from, to, f)
		return
	}
	m.rep.RangeFrom(from, func(k K, v V) bool {
		if !(k < to) {
			return false
		}
		return f(k, v)
	})
}

// Plan returns the planner's decision for this object.
func (m *AdjustedOrdered[K, V]) Plan() Plan { return m.plan }

// Adaptive returns the underlying contention-adaptive skip list when the
// profile declared Adaptive, else nil.
func (m *AdjustedOrdered[K, V]) Adaptive() *AdaptiveSkipList[K, V] { return m.ad }

// Representation returns the underlying representation.
func (m *AdjustedOrdered[K, V]) Representation() any { return m.raw }

// Probe returns the contention probe observing this object.
func (m *AdjustedOrdered[K, V]) Probe() *Probe {
	if m.ad != nil {
		return m.ad.Probe()
	}
	return m.probe
}

// Advise infers the most adjusted ordered-map profile the recorded usage
// permits, certified against Definition 1. ok is false when the object
// was constructed without WithUsageRecording.
func (m *AdjustedOrdered[K, V]) Advise() (Advice, bool) { return adviseObject(m.plan, m.rec) }

// initRecording attaches the usage recorder when the profile asked for one.
func (m *AdjustedOrdered[K, V]) initRecording(dt string, p *profile) error {
	if !p.record {
		return nil
	}
	hash, err := recordHash[K](dt, p)
	if err != nil {
		return err
	}
	m.rec = usage.NewRecorderKeys(p.reg(), usageKeyCells(p.capacityOr(1024)))
	m.recHash = hash
	return nil
}

// Ordered builds an ordered map (skip list) from a declared usage profile.
// The catalog rows are shared with Map — an ordered map narrows M1's
// interface no differently — but the representations keep iteration
// sorted: unrestricted → lock-free CAS baseline; SingleWriter → SWMR list;
// CommutingWriters → the extended segmented list; Adaptive on the
// commuting profile → the adaptive skip list, optionally split at Fenced
// keys into independently adjusting ranges.
func Ordered[K cmp.Ordered, V any](opts ...Option) (*AdjustedOrdered[K, V], error) {
	const dt = "Ordered"
	p := &profile{}
	p.apply(opts)
	if p.writeOnce {
		return nil, invalid(dt, "WriteOnce narrows references (R1→R2), not ordered maps")
	}
	if p.stripes > 0 {
		return nil, invalid(dt, "Stripes applies to Map and Set; ordered baselines are lock-free")
	}
	if p.ranges > 0 {
		return nil, invalid(dt, "Ranges splits hash-keyed objects; split Ordered with Fenced(keys...)")
	}
	mode, err := p.mode(dt)
	if err != nil {
		return nil, err
	}
	var fences []K
	if p.fences != nil {
		var ok bool
		if fences, ok = p.fences.([]K); !ok {
			var zero K
			return nil, invalid(dt, "Fenced keys have type %T, want []%T", p.fences, zero)
		}
		if !p.adaptive {
			return nil, invalid(dt, "Fenced defines adaptive range boundaries; declare Adaptive")
		}
		for i := 1; i < len(fences); i++ {
			if fences[i] <= fences[i-1] {
				return nil, invalid(dt, "Fenced keys must be strictly increasing (key %d)", i)
			}
		}
	}
	capacity := p.capacityOr(1024)
	buckets := p.bucketsOr(capacity * 2)

	m := &AdjustedOrdered[K, V]{plan: Plan{Datatype: dt, Mode: mode, Ranges: 1}, probe: p.probe}
	switch {
	case p.adaptive:
		if !mode.CommutingWrites() {
			return nil, invalid(dt, "the adaptive skip list requires commuting writers in every state: declare CommutingWriters (CWMR), not %s", mode)
		}
		if p.checked {
			return nil, invalid(dt, "the adaptive skip list has no runtime guard; drop Checked")
		}
		hash, err := resolveHash[K](dt, p)
		if err != nil {
			return nil, err
		}
		m.ad = adaptive.NewSortedMapFenced[K, V](p.reg(), buckets, hash, fences, p.resolvedPolicy())
		m.rep, m.raw = m.ad, m.ad
		m.plan.Variant, m.plan.Rep, m.plan.Adaptive = "M2", "AdaptiveSkipList", true
		m.plan.Ranges, m.plan.Fences = len(fences)+1, len(fences)
	case mode.CommutingWrites():
		hash, err := resolveHash[K](dt, p)
		if err != nil {
			return nil, err
		}
		rep := skiplist.NewSegmented[K, V](p.reg(), buckets, hash, p.checked)
		m.rep, m.raw = rep, rep
		m.plan.Variant, m.plan.Rep = "M2", "SegmentedSkipList"
	case mode == ModeSWMR:
		rep := skiplist.NewSWMR[K, V](p.checked)
		m.rep, m.raw = swmrListRep[K, V]{rep}, rep
		m.plan.Variant, m.plan.Rep = "M2", "SWMRSkipList"
	case mode == ModeAll:
		if p.checked {
			return nil, invalid(dt, "the lock-free skip list has no runtime guard; drop Checked")
		}
		rep := skiplist.NewConcurrent[K, V](p.probe)
		m.rep, m.raw = concurrentListRep[K, V]{rep}, rep
		m.plan.Variant, m.plan.Rep = "M1", "ConcurrentSkipList"
		if p.blind {
			m.plan.Variant = "M2"
		}
	default:
		return nil, invalid(dt, "no ordered representation exploits a single reader alone (declared %s); add CommutingWriters (CWSR) or drop SingleReader", mode)
	}
	if err := m.plan.validate(); err != nil {
		return nil, err
	}
	if err := m.initRecording(dt, p); err != nil {
		return nil, err
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Queue

// queueRep is the planner's view of a queue representation.
type queueRep[T any] interface {
	Offer(h *Handle, v T)
	Poll(h *Handle) (T, bool)
	Peek(h *Handle) (T, bool)
	IsEmpty(h *Handle) bool
	Drain(h *Handle, out []T, max int) int
}

// msQueueRep adapts the handle-free Michael–Scott baseline.
type msQueueRep[T any] struct{ q *queue.MS[T] }

func (r msQueueRep[T]) Offer(_ *Handle, v T)   { r.q.Offer(v) }
func (r msQueueRep[T]) Poll(*Handle) (T, bool) { return r.q.Poll() }
func (r msQueueRep[T]) Peek(*Handle) (T, bool) { return r.q.Peek() }
func (r msQueueRep[T]) IsEmpty(*Handle) bool   { return r.q.IsEmpty() }
func (r msQueueRep[T]) Drain(_ *Handle, out []T, max int) int {
	n := 0
	for n < max && n < len(out) {
		v, ok := r.q.Poll()
		if !ok {
			break
		}
		out[n] = v
		n++
	}
	return n
}

// AdjustedQueue is a FIFO queue built from a declared profile.
type AdjustedQueue[T any] struct {
	plan  Plan
	rep   queueRep[T]
	raw   any
	probe *Probe
	rec   *usage.Recorder
}

// Offer enqueues v.
func (q *AdjustedQueue[T]) Offer(h *Handle, v T) {
	if q.rec != nil {
		q.rec.RecordWrite(usage.MethodOffer, usage.SlotOf(h), usage.UnkeyedKey)
	}
	q.rep.Offer(h, v)
}

// Poll dequeues the head. Under SingleReader only the declared consumer may
// call it. (The recorder counts Poll on the consumer side — a "read" for
// cardinality purposes — because the MWSR adjustment is about who drains
// the queue, not about FIFO mutation.)
func (q *AdjustedQueue[T]) Poll(h *Handle) (T, bool) {
	if q.rec != nil {
		q.rec.RecordRead(usage.MethodPoll, usage.SlotOf(h))
	}
	return q.rep.Poll(h)
}

// Peek returns the head without removing it.
func (q *AdjustedQueue[T]) Peek(h *Handle) (T, bool) {
	if q.rec != nil {
		q.rec.RecordRead(usage.MethodPeek, usage.SlotOf(h))
	}
	return q.rep.Peek(h)
}

// IsEmpty reports emptiness.
func (q *AdjustedQueue[T]) IsEmpty(h *Handle) bool {
	if q.rec != nil {
		q.rec.RecordRead(usage.MethodIsEmpty, usage.SlotOf(h))
	}
	return q.rep.IsEmpty(h)
}

// Drain dequeues up to max elements into out, returning the count.
func (q *AdjustedQueue[T]) Drain(h *Handle, out []T, max int) int {
	if q.rec != nil {
		q.rec.RecordRead(usage.MethodDrain, usage.SlotOf(h))
	}
	return q.rep.Drain(h, out, max)
}

// Plan returns the planner's decision for this object.
func (q *AdjustedQueue[T]) Plan() Plan { return q.plan }

// Representation returns the underlying representation.
func (q *AdjustedQueue[T]) Representation() any { return q.raw }

// Probe returns the contention probe observing this object (possibly nil).
func (q *AdjustedQueue[T]) Probe() *Probe { return q.probe }

// Advise infers the most adjusted queue profile the recorded usage
// permits, certified against Definition 1. ok is false when the object
// was constructed without WithUsageRecording.
func (q *AdjustedQueue[T]) Advise() (Advice, bool) { return adviseObject(q.plan, q.rec) }

// Queue builds a FIFO queue from a declared usage profile: unrestricted →
// the Michael–Scott baseline (Q1, ALL); SingleReader → the multi-producer
// single-consumer queue of the paper's (Q1, MWSR) — producers never touch
// the consumer's head. Queue offers do not commute (enqueue order is
// observable), so CommutingWriters is rejected, as is SingleWriter (a
// queue with one producer and many consumers has no adjusted
// representation here).
func Queue[T any](opts ...Option) (*AdjustedQueue[T], error) {
	const dt = "Queue"
	p := &profile{}
	p.apply(opts)
	if p.writeOnce {
		return nil, invalid(dt, "WriteOnce narrows references (R1→R2), not queues")
	}
	if p.fences != nil {
		return nil, invalid(dt, "Fenced applies to adaptive Ordered objects")
	}
	if p.hash != nil {
		return nil, invalid(dt, "queues are unkeyed; WithHash does not apply")
	}
	if p.adaptive {
		return nil, invalid(dt, "no adaptive queue representation")
	}
	if p.capacity > 0 || p.stripes > 0 || p.buckets > 0 {
		return nil, invalid(dt, "queues are unbounded; Capacity, Stripes and Buckets do not apply")
	}
	if p.commuting {
		return nil, invalid(dt, "queue offers do not commute (enqueue order is observable); drop CommutingWriters")
	}
	mode, err := p.mode(dt)
	if err != nil {
		return nil, err
	}

	q := &AdjustedQueue[T]{plan: Plan{Datatype: dt, Variant: "Q1", Mode: mode}, probe: p.probe}
	switch mode {
	case ModeMWSR:
		rep := queue.NewMPSC[T](p.probe, p.checked)
		q.rep, q.raw = rep, rep
		q.plan.Rep = "MPSCQueue"
	case ModeAll:
		if p.checked {
			return nil, invalid(dt, "the Michael–Scott queue has no runtime guard; drop Checked")
		}
		rep := queue.NewMS[T](p.probe)
		q.rep, q.raw = msQueueRep[T]{rep}, rep
		q.plan.Rep = "MSQueue"
	default:
		return nil, invalid(dt, "no single-writer queue representation (declared %s)", mode)
	}
	if err := q.plan.validate(); err != nil {
		return nil, err
	}
	if p.record {
		q.rec = usage.NewRecorderKeys(p.reg(), 4)
	}
	return q, nil
}

// ---------------------------------------------------------------------------
// Ref

// refRep is the planner's view of a reference representation.
type refRep[T any] interface {
	Get(h *Handle) *T
	Set(h *Handle, v *T) error
	Update(h *Handle, f func(old *T) *T) error
}

type atomicRefRep[T any] struct{ r *ref.Atomic[T] }

func (a atomicRefRep[T]) Get(*Handle) *T            { return a.r.Get() }
func (a atomicRefRep[T]) Set(_ *Handle, v *T) error { a.r.Set(v); return nil }
func (a atomicRefRep[T]) Update(_ *Handle, f func(*T) *T) error {
	for {
		old := a.r.Get()
		if a.r.CompareAndSet(old, f(old)) {
			return nil
		}
	}
}

type rcuRefRep[T any] struct{ r *ref.RCUBox[T] }

func (a rcuRefRep[T]) Get(*Handle) *T { return a.r.Read() }
func (a rcuRefRep[T]) Set(h *Handle, v *T) error {
	a.r.Update(h, func(*T) *T { return v })
	return nil
}
func (a rcuRefRep[T]) Update(h *Handle, f func(*T) *T) error {
	a.r.Update(h, f)
	return nil
}

type writeOnceRefRep[T any] struct{ w *ref.WriteOnce[T] }

func (a writeOnceRefRep[T]) Get(h *Handle) *T          { return a.w.Get(h) }
func (a writeOnceRefRep[T]) Set(h *Handle, v *T) error { return a.w.Set(h, v) }
func (a writeOnceRefRep[T]) Update(h *Handle, f func(*T) *T) error {
	return a.w.Set(h, f(a.w.Get(h)))
}

// AdjustedRef is a shared reference built from a declared profile.
type AdjustedRef[T any] struct {
	plan Plan
	rep  refRep[T]
	raw  any
	rec  *usage.Recorder
}

// Get returns the current referent (nil while unset).
func (r *AdjustedRef[T]) Get(h *Handle) *T {
	if r.rec != nil {
		r.rec.RecordRead(usage.MethodGet, usage.SlotOf(h))
	}
	return r.rep.Get(h)
}

// Set replaces the referent. Under WriteOnce a second Set returns
// ErrAlreadySet; under SingleWriter only the declared writer may call it.
func (r *AdjustedRef[T]) Set(h *Handle, v *T) error {
	if r.rec != nil {
		r.rec.RecordWrite(usage.MethodSet, usage.SlotOf(h), usage.UnkeyedKey)
	}
	return r.rep.Set(h, v)
}

// Update replaces the referent with f(old). Under WriteOnce it succeeds
// only as the initializing write. f must be pure: the unrestricted plan
// retries a CAS loop and may invoke f more than once under write
// contention (the single-writer and write-once plans invoke it exactly
// once).
func (r *AdjustedRef[T]) Update(h *Handle, f func(old *T) *T) error {
	if r.rec != nil {
		r.rec.RecordWrite(usage.MethodUpdate, usage.SlotOf(h), usage.UnkeyedKey)
	}
	return r.rep.Update(h, f)
}

// Plan returns the planner's decision for this object.
func (r *AdjustedRef[T]) Plan() Plan { return r.plan }

// Representation returns the underlying representation.
func (r *AdjustedRef[T]) Representation() any { return r.raw }

// Advise infers the most adjusted reference profile the recorded usage
// permits, certified against Definition 1. ok is false when the object
// was constructed without WithUsageRecording.
func (r *AdjustedRef[T]) Advise() (Advice, bool) { return adviseObject(r.plan, r.rec) }

// Ref builds a shared reference holding v (nil allowed) from a declared
// usage profile: unrestricted → the atomic reference (R1); SingleWriter →
// the RCU box (R1, SWMR), whose readers take immutable snapshots;
// WriteOnce → the write-once reference of Listing 1 (R2), which must start
// unset. Reference writes replace the whole referent, so they never
// commute and CommutingWriters is rejected.
func Ref[T any](v *T, opts ...Option) (*AdjustedRef[T], error) {
	const dt = "Ref"
	p := &profile{}
	p.apply(opts)
	if p.blind {
		return nil, invalid(dt, "the reference family has no blind narrowing (R1's set already returns nothing)")
	}
	if p.fences != nil {
		return nil, invalid(dt, "Fenced applies to adaptive Ordered objects")
	}
	if p.hash != nil {
		return nil, invalid(dt, "references are unkeyed; WithHash does not apply")
	}
	if p.adaptive {
		return nil, invalid(dt, "no adaptive reference representation")
	}
	if p.capacity > 0 || p.stripes > 0 || p.buckets > 0 {
		return nil, invalid(dt, "references hold one referent; Capacity, Stripes and Buckets do not apply")
	}
	if p.commuting {
		return nil, invalid(dt, "reference writes replace the referent and do not commute; drop CommutingWriters")
	}
	mode, err := p.mode(dt)
	if err != nil {
		return nil, err
	}

	r := &AdjustedRef[T]{plan: Plan{Datatype: dt, Mode: mode}}
	switch {
	case p.writeOnce:
		if v != nil {
			return nil, invalid(dt, "WriteOnce starts unset: construct with a nil initial value and Set once")
		}
		if mode != ModeAll && mode != ModeSWMR {
			return nil, invalid(dt, "no %s write-once representation; WriteOnce takes SingleWriter or no restriction", mode)
		}
		if p.checked {
			return nil, invalid(dt, "the write-once reference needs no guard (its precondition is checked by Set); drop Checked")
		}
		rep := ref.NewWriteOnce[T](p.reg())
		r.rep, r.raw = writeOnceRefRep[T]{rep}, rep
		r.plan.Variant, r.plan.Rep = "R2", "WriteOnceRef"
	case mode == ModeSWMR:
		rep := ref.NewRCUBox[T](v, p.checked)
		r.rep, r.raw = rcuRefRep[T]{rep}, rep
		r.plan.Variant, r.plan.Rep = "R1", "RCUBox"
	case mode == ModeAll:
		if p.checked {
			return nil, invalid(dt, "the atomic reference has no runtime guard; drop Checked")
		}
		rep := ref.NewAtomic[T](v)
		r.rep, r.raw = atomicRefRep[T]{rep}, rep
		r.plan.Variant, r.plan.Rep = "R1", "AtomicRef"
	default:
		return nil, invalid(dt, "no single-reader reference representation (declared %s); drop SingleReader", mode)
	}
	if err := r.plan.validate(); err != nil {
		return nil, err
	}
	if p.record {
		r.rec = usage.NewRecorderKeys(p.reg(), 4)
	}
	return r, nil
}
