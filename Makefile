# CI and humans run the same commands: .github/workflows/ci.yml invokes
# these targets verbatim.

GO ?= go

# Packages covered by the race-detector job: the adaptive machine, the
# objects it migrates between (the flat open-addressing family included),
# the serving layer (pipelined TCP clients against shards under forced
# promote/demote flapping), the resilience layer (fault injection and
# the chaos storm), and the open-loop load generator (clock goroutine
# feeding a worker pool through a bounded queue).
RACE_PKGS = ./internal/adaptive/... ./internal/core/... ./internal/counter/... ./internal/flatmap/... ./internal/hashmap/... ./internal/skiplist/... ./internal/wire/... ./internal/server/... ./internal/faultnet/... ./internal/chaos/... ./internal/loadgen/... ./internal/usage/... ./internal/advisor/...

# Tiny configuration for the bench-smoke job: catches harness bit-rot
# without burning CI minutes; the JSON lands as a workflow artifact. The
# "all" figure set includes the AdaptiveSkipList workload (Figures 6 and 7),
# so the adaptive engine's promotion path is exercised on every CI run. CI
# overrides BENCH_SMOKE_JSON with a bench-<short-sha>.json name so artifacts
# from different commits are diffable side by side.
BENCH_SMOKE_FLAGS = -fig all -threads 1,2 -duration 25ms -warmup 5ms -items 1024 -range 2048
BENCH_SMOKE_JSON  = bench-smoke.json

# Flat-figure smoke + regression compare: the flat figure alone at the smoke
# configuration, compared against the checked-in baseline (BENCH_flat.json)
# by cmd/benchcmp with a wide noise band. CI runs bench-compare as a
# non-blocking report step (shared runners are noisy); locally,
# `make bench-compare BENCHCMP_FLAGS=-fail` turns regressions into a
# non-zero exit. Refresh the baseline deliberately with `make bench-flat`
# after a representation change and commit the diff.
FLAT_SMOKE_FLAGS = -fig flat -threads 1,2 -duration 25ms -warmup 5ms -items 1024 -range 2048
FLAT_SMOKE_JSON  = flat-smoke.json
FLAT_BASELINE    = BENCH_flat.json
BENCHCMP_FLAGS  =

# Networked retwis smoke: tiny closed-loop run of the Table-2 workload as
# RESP pipelines against a self-hosted dego-server, one point per store
# kind; the latency JSON lands as a CI artifact (net-<short-sha>.json, same
# diffable-trajectory idea as the bench smoke).
NET_SMOKE_FLAGS = -net -stores adaptive,striped -conns 2 -pipeline 8 -netusers 2000 -netduration 300ms
NET_SMOKE_JSON  = net-smoke.json

# Open-loop frontier smoke: a short two-rate walk of one store kind,
# measured coordinated-omission-free (latency from intended start), once
# over a clean network and once through the -chaos fault-injected dialer.
# Like the other smokes this catches harness bit-rot, not performance;
# both frontier JSONs land as CI artifacts (frontier-<short-sha>.json /
# frontier-chaos-<short-sha>.json) so the latency trajectory stays
# diffable across PRs.
OPENLOOP_SMOKE_FLAGS = -openloop -stores adaptive -rates 1k,2k -olduration 300ms -olworkers 2 -netusers 2000
FRONTIER_JSON        = frontier-smoke.json
FRONTIER_CHAOS_JSON  = frontier-chaos-smoke.json

# The clean-network frontier is also regression-tracked: the smoke run is
# compared cell by cell (achieved rate, and p99 when both runs stayed
# unsaturated) against the checked-in BENCH_frontier.json. Like the flat
# compare, the CI step is a non-blocking report; run
# `make frontier-compare BENCHCMP_FLAGS=-fail` on a quiet machine to
# enforce the band, and `make frontier-baseline` to refresh the baseline.
FRONTIER_BASELINE = BENCH_frontier.json

# Advise smoke: replay the Table-2 workload against the unadjusted
# recorded backend and print what the tuning advisor certifies from the
# traffic alone. The JSON lands as a CI artifact
# (advise-<short-sha>.json) so inference verdicts stay diffable across
# PRs.
ADVISE_SMOKE_FLAGS = -advise -advusers 512 -advthreads 4 -advops 1500
ADVISE_JSON        = advise-smoke.json

# Chaos smoke: the fault-injected storm (internal/chaos) under the race
# detector — seeded resets, stalls and torn writes against a live server,
# asserting zero panics, zero goroutine leaks and exact convergence. The
# run summary lands as a CI artifact (chaos-<short-sha>.json via
# CHAOS_JSON, same diffable-trajectory idea as the other smokes).
CHAOS_JSON = chaos-smoke.json

COVER_PROFILE = coverage.out

.PHONY: build test race bench-smoke bench-flat bench-compare server-smoke net-smoke openloop-smoke frontier-baseline frontier-compare advise-smoke chaos-smoke cover fmt fmt-check vet docs-check api api-check deprecations

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)

bench-smoke:
	$(GO) run ./cmd/dego-bench $(BENCH_SMOKE_FLAGS) -json $(BENCH_SMOKE_JSON)

# Regenerate the checked-in flat baseline (run on a quiet machine, then
# commit BENCH_flat.json).
bench-flat:
	$(GO) run ./cmd/dego-bench $(FLAT_SMOKE_FLAGS) -json $(FLAT_BASELINE)

# Run the flat figure fresh and compare against the checked-in baseline.
bench-compare:
	$(GO) run ./cmd/dego-bench $(FLAT_SMOKE_FLAGS) -json $(FLAT_SMOKE_JSON)
	$(GO) run ./cmd/benchcmp $(BENCHCMP_FLAGS) $(FLAT_BASELINE) $(FLAT_SMOKE_JSON)

# Boot dego-server on an ephemeral port and run the scripted
# GET/SET/INCR/LRANGE self-session through the repo's own wire client
# (CI images have no redis-cli); every reply is checked.
server-smoke:
	$(GO) run ./cmd/dego-server -smoke -shards 2

net-smoke:
	$(GO) run ./cmd/retwis-bench $(NET_SMOKE_FLAGS) -json $(NET_SMOKE_JSON)

openloop-smoke:
	$(GO) run ./cmd/retwis-bench $(OPENLOOP_SMOKE_FLAGS) -json $(FRONTIER_JSON)
	$(GO) run ./cmd/retwis-bench $(OPENLOOP_SMOKE_FLAGS) -chaos -json $(FRONTIER_CHAOS_JSON)

# Regenerate the checked-in frontier baseline (run on a quiet machine,
# then commit BENCH_frontier.json).
frontier-baseline:
	$(GO) run ./cmd/retwis-bench $(OPENLOOP_SMOKE_FLAGS) -json $(FRONTIER_BASELINE)

# Walk the clean frontier fresh and compare against the checked-in
# baseline, cell by cell.
frontier-compare:
	$(GO) run ./cmd/retwis-bench $(OPENLOOP_SMOKE_FLAGS) -json $(FRONTIER_JSON)
	$(GO) run ./cmd/benchcmp $(BENCHCMP_FLAGS) $(FRONTIER_BASELINE) $(FRONTIER_JSON)

advise-smoke:
	$(GO) run ./cmd/retwis-bench $(ADVISE_SMOKE_FLAGS) -json $(ADVISE_JSON)

# abspath: go test runs with the package dir as cwd, and the summary should
# land at the repo root where CI picks it up.
chaos-smoke:
	CHAOS_JSON=$(abspath $(CHAOS_JSON)) $(GO) test -race -count=1 ./internal/chaos/...

# The full test suite with coverage, atomic mode so the concurrent tests
# count correctly; prints the total line into the log. CI runs this as its
# one test pass (a separate `make test` would run the suite twice).
cover:
	$(GO) test -covermode=atomic -coverprofile=$(COVER_PROFILE) ./...
	$(GO) tool cover -func=$(COVER_PROFILE) | tail -n 1

# Documentation drift fails the build: every relative Markdown link must
# resolve (cmd/docscheck) and every runnable Example must compile and print
# its documented output. gofmt on the example files is covered by fmt-check,
# which CI runs in the same job.
docs-check:
	$(GO) run ./cmd/docscheck
	$(GO) test -run Example ./...

# The public API surface is a reviewed contract: api/dego.txt is the golden
# snapshot rendered by cmd/apidump (exported decls only, internals elided).
# api-check fails on any undeclared surface change; regenerate deliberately
# with `make api` and commit the diff.
api:
	$(GO) run ./cmd/apidump > api/dego.txt

api-check:
	$(GO) run ./cmd/apidump -check api/dego.txt

# Staticcheck-style sweep: no in-repo call site (benches, backends,
# examples, tests) may use the deprecated representation-specific
# constructors outside their own definitions — everything constructs
# through the profile API.
deprecations:
	$(GO) run ./cmd/deprecations

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
