# CI and humans run the same commands: .github/workflows/ci.yml invokes
# these targets verbatim.

GO ?= go

# Packages covered by the race-detector job: the adaptive machine and the
# objects it migrates between.
RACE_PKGS = ./internal/adaptive/... ./internal/core/... ./internal/counter/... ./internal/hashmap/...

# Tiny configuration for the bench-smoke job: catches harness bit-rot
# without burning CI minutes; the JSON lands as a workflow artifact.
BENCH_SMOKE_FLAGS = -fig all -threads 1,2 -duration 25ms -warmup 5ms -items 1024 -range 2048
BENCH_SMOKE_JSON  = bench-smoke.json

.PHONY: build test race bench-smoke fmt fmt-check vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)

bench-smoke:
	$(GO) run ./cmd/dego-bench $(BENCH_SMOKE_FLAGS) -json $(BENCH_SMOKE_JSON)

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
