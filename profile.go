package dego

import (
	"errors"
	"fmt"
)

// ErrInvalidProfile is the sentinel every profile-rejection error wraps:
// errors.Is(err, dego.ErrInvalidProfile) is true exactly when a profile
// constructor (Counter, Map, Set, Ordered, Queue, Ref) refused to build
// because the declared usage is not a valid adjustment — the combination
// names no mode of §4.2, the narrowing does not exist in the object's
// Table 1 family, or the library has no representation for the declared
// object. The concrete error is an *InvalidProfileError carrying the
// datatype and the reason.
var ErrInvalidProfile = errors.New("invalid profile")

// InvalidProfileError reports why a declared profile was rejected. It wraps
// ErrInvalidProfile.
type InvalidProfileError struct {
	// Datatype is the profile constructor that rejected ("Counter", "Map",
	// "Set", "Ordered", "Queue", "Ref").
	Datatype string
	// Detail is the reason, phrased against the paper's model where the
	// rejection is theoretical (no such mode, no such narrowing) and
	// against the library where it is practical (no representation).
	Detail string
}

// Error implements the error interface.
func (e *InvalidProfileError) Error() string {
	return fmt.Sprintf("dego: %s: %s: %s", e.Datatype, ErrInvalidProfile.Error(), e.Detail)
}

// Unwrap makes errors.Is(err, ErrInvalidProfile) hold.
func (e *InvalidProfileError) Unwrap() error { return ErrInvalidProfile }

// invalid builds the rejection error for datatype dt.
func invalid(dt, format string, args ...any) error {
	return &InvalidProfileError{Datatype: dt, Detail: fmt.Sprintf(format, args...)}
}

// profile is the declared usage a constructor collects from its options
// before planning a representation. Zero value = no adjustment declared:
// full interface, every thread may do everything.
type profile struct {
	registry *Registry
	probe    *Probe

	// Interface narrowings (the d/p/r arrows of Figure 3).
	blind     bool
	writeOnce bool

	// Access restrictions (the m/c arrows).
	singleWriter bool
	singleReader bool
	commuting    bool

	// Adaptivity.
	adaptive  bool
	policy    AdaptivePolicy
	policySet bool
	ranges    int

	// Tuning.
	capacity int
	stripes  int
	buckets  int
	checked  bool

	// Observation: attach a usage recorder for the tuning advisor.
	record bool

	// Key typing (carried as any because options are not generic over the
	// object's key type; the constructor re-types them).
	hash   any // func(K) uint64
	fences any // []K, strictly increasing
}

// apply folds the options into a profile.
func (p *profile) apply(opts []Option) {
	for _, o := range opts {
		o(p)
	}
}

// mode resolves the declared access restriction to one of the five §4.2
// modes. Declaring both a single writer and a single reader is rejected:
// the paper's permission maps have no SWSR point (a single thread doing
// everything needs no shared object at all).
func (p *profile) mode(dt string) (Mode, error) {
	if p.singleWriter && p.singleReader {
		return 0, invalid(dt, "SingleWriter and SingleReader together name no §4.2 mode (SWSR is not a shared-object permission map)")
	}
	switch {
	case p.singleWriter:
		// A single writer trivially commutes with itself, so
		// CommutingWriters alongside SingleWriter is redundant, not wrong.
		return ModeSWMR, nil
	case p.singleReader && p.commuting:
		return ModeCWSR, nil
	case p.singleReader:
		return ModeMWSR, nil
	case p.commuting:
		return ModeCWMR, nil
	}
	return ModeAll, nil
}

// flatEligible reports whether the declared tuning gates into the flat
// representation family: an explicit Capacity (the flat tables
// preallocate, so a declared capacity is their construction contract) and
// none of the declarations only the node-based representations honor — a
// caller-supplied hash (flat tables hash internally via the integer-key
// codec), stripe or directory-bucket tuning, adaptivity, or a contention
// probe (the flat hot paths have no instrumented wait to record). The
// caller still checks the key type and mode.
func (p *profile) flatEligible() bool {
	return p.capacity > 0 && p.hash == nil && p.stripes == 0 &&
		p.buckets == 0 && !p.adaptive && p.probe == nil
}

// resolvedPolicy returns the adaptive policy with the Ranges option folded
// in.
func (p *profile) resolvedPolicy() AdaptivePolicy {
	pol := p.policy
	if !p.policySet {
		pol = DefaultAdaptivePolicy()
	}
	if p.ranges > 0 {
		pol.Ranges = p.ranges
	}
	return pol
}

// reg returns the declared registry, defaulting to the process-wide one.
func (p *profile) reg() *Registry {
	if p.registry != nil {
		return p.registry
	}
	return DefaultRegistry()
}

// capacityOr returns the declared capacity or def.
func (p *profile) capacityOr(def int) int {
	if p.capacity > 0 {
		return p.capacity
	}
	return def
}

// stripesOr returns the declared stripe count or def.
func (p *profile) stripesOr(def int) int {
	if p.stripes > 0 {
		return p.stripes
	}
	return def
}

// bucketsOr returns the declared directory bucket count or def.
func (p *profile) bucketsOr(def int) int {
	if p.buckets > 0 {
		return p.buckets
	}
	return def
}
