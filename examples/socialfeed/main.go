// Socialfeed: a miniature of the paper's §6.3 social-network application
// built on the public API. Four shard goroutines own disjoint user ranges;
// fan-out posting crosses shards through multi-producer single-consumer
// timeline queues, while all per-user state lives in commuting-writes
// segmented maps. This is the exact object assignment of the DEGO version in
// the paper: mapTimelines CWMR + MPSC queues, mapProfiles CWMR, community
// CWMR.
package main

import (
	"fmt"
	"sync"

	dego "github.com/adjusted-objects/dego"
)

const (
	shards = 4
	users  = 1000
)

type userID int

func ownerShard(u userID) int { return int(u) % shards }

type post struct {
	Author userID
	Text   string
}

type network struct {
	followers *dego.AdjustedMap[userID, []userID] // immutable slices, replaced on change
	timelines *dego.AdjustedMap[userID, *dego.AdjustedQueue[post]]
	profiles  *dego.AdjustedMap[userID, string]
	community *dego.AdjustedSet[userID]
}

func hashUser(u userID) uint64 { return dego.Hash64(uint64(u)) }

func main() {
	reg := dego.NewRegistry(shards + 1)
	// Per-user state is written by the owning shard only and writes of
	// distinct shards commute (distinct keys), so every map declares
	// CommutingWriters; the planner picks the extended segmentations.
	shared := []dego.Option{dego.CommutingWriters(), dego.On(reg),
		dego.Capacity(users), dego.WithHash(hashUser)}
	net := &network{
		followers: dego.Must(dego.Map[userID, []userID](shared...)),
		timelines: dego.Must(dego.Map[userID, *dego.AdjustedQueue[post]](shared...)),
		profiles:  dego.Must(dego.Map[userID, string](shared...)),
		community: dego.Must(dego.Set[userID](shared...)),
	}

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()

			// Each shard registers its own users: the keys bind to this
			// shard's segments, so every later write by this shard commutes
			// with the other shards' writes.
			for u := userID(s); u < users; u += shards {
				net.timelines.Put(h, u, dego.Must(dego.Queue[post](dego.SingleReader())))
				net.profiles.Put(h, u, fmt.Sprintf("user-%d", u))
				// u follows its three "neighbours".
				net.followers.Put(h, u, []userID{
					(u + 1) % users, (u + 7) % users, (u + 13) % users,
				})
				if u%10 == 0 {
					net.community.Add(h, u)
				}
			}
		}(s)
	}
	wg.Wait()

	// Posting: every shard posts on behalf of its users; deliveries cross
	// shards freely because timelines are multi-producer.
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()
			for u := userID(s); u < users; u += shards {
				if flw, ok := net.followers.Get(u); ok {
					for _, f := range flw {
						if q, ok := net.timelines.Get(f); ok {
							q.Offer(h, post{Author: u, Text: "hello"})
						}
					}
				}
			}
		}(s)
	}
	wg.Wait()

	// Reading: each user's owner shard is the single consumer of its
	// timeline queue.
	totals := make([]int, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()
			for u := userID(s); u < users; u += shards {
				if q, ok := net.timelines.Get(u); ok {
					for {
						if _, ok := q.Poll(h); !ok {
							break
						}
						totals[s]++
					}
				}
			}
		}(s)
	}
	wg.Wait()

	delivered := 0
	for _, t := range totals {
		delivered += t
	}
	fmt.Printf("users: %d, community members: %d\n", net.profiles.Len(), net.community.Len())
	fmt.Printf("posts delivered: %d (expected %d = 3 follows x %d users)\n",
		delivered, 3*users, users)
	name, _ := net.profiles.Get(42)
	fmt.Printf("profile(42) = %q, in community: %v\n", name, net.community.Contains(40))
}
