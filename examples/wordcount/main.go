// Wordcount: a parallel map-reduce-style word count built entirely on
// adjusted objects. Each worker owns the words that hash to it (the
// commuting-writes pattern of §5.2): an MPSC queue fans lines out to
// workers, a segmented map accumulates per-word counts without a single
// contended lock, and an increment-only counter tracks progress.
package main

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	dego "github.com/adjusted-objects/dego"
)

const workers = 4

var corpus = strings.Repeat(`the quick brown fox jumps over the lazy dog
pack my box with five dozen liquor jugs
how vexingly quick daft zebras jump
the five boxing wizards jump quickly
`, 500)

func main() {
	reg := dego.NewRegistry(workers + 2)
	counts := dego.Must(dego.Map[string, int](dego.CommutingWriters(), dego.On(reg),
		dego.Capacity(4096), dego.Buckets(8192)))
	linesDone := dego.Must(dego.Counter(dego.Blind(), dego.SingleReader(), dego.On(reg)))

	// One MPSC work queue per worker: each worker is the single consumer of
	// its own queue (Q1, MWSR), the producer is the dispatcher.
	queues := make([]*dego.AdjustedQueue[string], workers)
	for i := range queues {
		queues[i] = dego.Must(dego.Queue[string](dego.SingleReader()))
	}

	dispatcher := reg.MustRegister()
	lines := strings.Split(strings.TrimSpace(corpus), "\n")
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			h := reg.MustRegister()
			defer h.Release()
			defer func() { done <- struct{}{} }()
			for {
				line, ok := queues[w].Poll(h)
				if !ok {
					runtime.Gosched()
					continue
				}
				if line == "\x00EOF" {
					return
				}
				for _, word := range strings.Fields(line) {
					// This worker owns every word routed to it, so the
					// count update commutes with every other worker's.
					if n, ok := counts.Get(word); ok {
						counts.Put(h, word, n+1)
					} else {
						counts.Put(h, word, 1)
					}
				}
				linesDone.Inc(h)
			}
		}(w)
	}

	// Route each line... lines contain mixed words; split per worker by
	// word hash so ownership is consistent.
	for _, line := range lines {
		buckets := make([][]string, workers)
		for _, word := range strings.Fields(line) {
			w := int(dego.HashString(word) % uint64(workers))
			buckets[w] = append(buckets[w], word)
		}
		for w, words := range buckets {
			if len(words) > 0 {
				queues[w].Offer(dispatcher, strings.Join(words, " "))
			}
		}
	}
	for w := 0; w < workers; w++ {
		queues[w].Offer(dispatcher, "\x00EOF")
	}
	for w := 0; w < workers; w++ {
		<-done
	}

	type wc struct {
		word string
		n    int
	}
	var all []wc
	counts.Range(func(word string, n int) bool {
		all = append(all, wc{word, n})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].word < all[j].word
	})
	fmt.Printf("distinct words: %d\n", len(all))
	for _, e := range all[:5] {
		fmt.Printf("%8d  %s\n", e.n, e.word)
	}
}
