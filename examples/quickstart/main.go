// Quickstart: the adjusted-objects workflow in one file — register a thread
// handle, pick the adjusted object matching how you use the data, and let
// commuting writes scale instead of contending.
package main

import (
	"fmt"
	"sync"

	dego "github.com/adjusted-objects/dego"
)

func main() {
	// 1. An increment-only counter: many goroutines count events, one
	// goroutine reads the total. Adjusted to (C3, CWSR), it is a plain
	// per-thread long — no compare-and-swap anywhere.
	events := dego.Must(dego.Counter(dego.Blind(), dego.SingleReader()))

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := dego.MustRegister() // thread identity: do this once per goroutine
			defer h.Release()
			for i := 0; i < 100_000; i++ {
				events.Inc(h)
			}
		}()
	}
	wg.Wait()

	reader := dego.MustRegister()
	defer reader.Release()
	fmt.Printf("events counted: %d\n", events.Get(reader))

	// 2. A write-once configuration reference (Listing 1 of the paper):
	// initialized once, read forever after without synchronization cost.
	type config struct{ MaxConns int }
	cfg := dego.Must(dego.Ref[config](nil, dego.WriteOnce()))
	if err := cfg.Set(reader, &config{MaxConns: 128}); err != nil {
		panic(err)
	}
	if err := cfg.Set(reader, &config{MaxConns: 256}); err != nil {
		fmt.Printf("second initialization rejected: %v\n", err)
	}
	fmt.Printf("config: MaxConns=%d\n", cfg.Get(reader).MaxConns)

	// 3. A segmented map: goroutines own disjoint key ranges (commuting
	// writes), so puts never touch a shared cache line; any goroutine reads.
	m := dego.Must(dego.Map[string, int](dego.CommutingWriters(), dego.Capacity(1024)))
	wg = sync.WaitGroup{}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := dego.MustRegister()
			defer h.Release()
			for i := 0; i < 1000; i++ {
				m.Put(h, fmt.Sprintf("w%d-key%d", w, i), i)
			}
		}(w)
	}
	wg.Wait()
	v, ok := m.Get("w2-key500")
	fmt.Printf("map entries: %d, lookup w2-key500 = (%d, %v)\n", m.Len(), v, ok)
}
