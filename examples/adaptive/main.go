// Adaptive: a workload whose contention phase-shifts mid-run, driving the
// contention-adaptive objects through their whole state machine:
//
//  1. a lone writer warms the counter, the map and the sorted map — the
//     cheap unadjusted representations (atomic cell, striped map, lock-free
//     skip list) win, so they stay quiescent;
//  2. a burst of writers arrives — CAS failures and lock waits push the
//     windowed stall rate over the promotion threshold and the objects
//     promote themselves to the adjusted representations (per-thread cells,
//     extended segmentations);
//  3. while the sorted map is promoted, an ordered range scan runs over it —
//     the merge iterator interleaves the live segmented shadow with the
//     frozen backing, and the keys still come out strictly ascending;
//  4. the burst drains away — the lone survivor's samples show writer
//     concurrency collapsed, and the objects demote again.
//
// Readers run through every phase: representation switches never block them.
// The counter is exact at every quiesce point no matter how often it
// switched. At the end the demo prints the state-transition trace each
// object was observed to walk.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	dego "github.com/adjusted-objects/dego"
)

const (
	burstWriters = 8
	keyRange     = 4096
	phaseOps     = 400_000
)

// tracer records each object's state every time a worker passes an
// observation point, deduplicating consecutive repeats — the demo's
// state-transition trace. Observing from the workers (rather than a polling
// goroutine) guarantees the trace sees every phase the workers lived
// through, even on a single-CPU host where a background poller might never
// be scheduled inside a short promoted window. The short-lived
// migrating/demoting states only show up when an observation lands inside
// one; the trace is what was observed, not a transition log.
type tracer struct {
	mu   sync.Mutex
	objs []tracedObj
	seqs [][]dego.AdaptiveState
}

type tracedObj struct {
	name  string
	state func() dego.AdaptiveState
}

func newTracer(objs ...tracedObj) *tracer {
	t := &tracer{objs: objs, seqs: make([][]dego.AdaptiveState, len(objs))}
	t.observe()
	return t
}

func (t *tracer) observe() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, o := range t.objs {
		s := o.state()
		if seq := t.seqs[i]; len(seq) == 0 || seq[len(seq)-1] != s {
			t.seqs[i] = append(seq, s)
		}
	}
}

func (t *tracer) print() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, o := range t.objs {
		out := o.name + " trace: "
		for j, s := range t.seqs[i] {
			if j > 0 {
				out += " → "
			}
			out += s.String()
		}
		fmt.Println(out)
	}
}

func main() {
	reg := dego.NewRegistry(burstWriters + 8)
	// An eager policy so the demo converges in fractions of a second; the
	// defaults sample 16x less often.
	policy := dego.AdaptivePolicy{SampleEvery: 64, MinSamples: 2, DemoteSamples: 4}
	counter := dego.Must(dego.Counter(dego.Blind(), dego.SingleReader(), dego.On(reg),
		dego.Adaptive(dego.WithPolicy(policy)))).Adaptive()
	m := dego.Must(dego.Map[int, int](dego.CommutingWriters(), dego.On(reg), dego.Stripes(8),
		dego.Capacity(keyRange), dego.Adaptive(dego.WithPolicy(policy)))).Adaptive()
	sl := dego.Must(dego.Ordered[int, int](dego.CommutingWriters(), dego.On(reg),
		dego.Buckets(keyRange*2), dego.Adaptive(dego.WithPolicy(policy)))).Adaptive()

	traces := newTracer(
		tracedObj{"map     ", m.State},
		tracedObj{"skiplist", sl.State},
	)

	var totalIncs atomic.Int64
	report := func(phase string) {
		traces.observe()
		h := reg.MustRegister()
		defer h.Release()
		fmt.Printf("%-28s counter=%-9v map=%-9v skiplist=%-9v transitions=%d/%d/%d count=%d\n",
			phase+":", counter.State(), m.State(), sl.State(),
			counter.Transitions(), m.Transitions(), sl.Transitions(), counter.Get(h))
	}

	// A reader runs through every phase; switches never block it.
	stopReader := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		h := reg.MustRegister()
		defer h.Release()
		for {
			select {
			case <-stopReader:
				return
			default:
				counter.Get(h)
				m.Get(int(counter.Get(h)) % keyRange)
				sl.Get(int(counter.Get(h)) % keyRange)
			}
		}
	}()

	work := func(w, ops int) {
		h := reg.MustRegister()
		defer h.Release()
		for i := 0; i < ops; i++ {
			counter.Inc(h)
			// Commuting writes: writer w owns keys k ≡ w (mod burstWriters).
			k := (i%(keyRange/burstWriters))*burstWriters + w
			if i%3 == 0 {
				m.Remove(h, k)
				sl.Remove(h, k)
			} else {
				m.Put(h, k, i)
				sl.Put(h, k, i)
			}
			if i&63 == 0 {
				traces.observe()
			}
		}
		totalIncs.Add(int64(ops))
	}

	// Phase 1: a lone writer — no contention, the cheap representations win.
	work(0, phaseOps)
	report("phase 1 (lone writer)")

	// Phase 2: contention arrives — the stall rate promotes the objects.
	var wg sync.WaitGroup
	for w := 0; w < burstWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w, phaseOps)
		}(w)
	}
	wg.Wait()
	if counter.State() == dego.AdaptiveQuiescent && runtime.GOMAXPROCS(0) == 1 {
		// A single-core host cannot produce hardware contention: goroutines
		// timeslice instead of racing, CAS never fails, locks never wait.
		// Feed the probes a synthetic stall burst (the same deterministic
		// stand-in the unit tests use) so the demo still walks the machine.
		fmt.Println("  (single CPU: no real contention possible — injecting synthetic stalls)")
		for i := 0; i < 50_000; i++ {
			counter.Probe().RecordCASFailure()
			m.Probe().RecordLockWait()
			sl.Probe().RecordCASFailure()
		}
		work(0, 256) // just enough boundaries to promote, not to re-demote
	}
	report("phase 2 (contention burst)")

	// Phase 3: an ordered range over the (ideally promoted) sorted map. The
	// scan merges the segmented shadow with the frozen lock-free backing and
	// must stay strictly ascending whatever state the flap left us in.
	low := keyRange / 2
	prev, scanned := -1, 0
	var firstFew []int
	sl.RangeFrom(low, func(k, v int) bool {
		if k < low || k <= prev {
			panic(fmt.Sprintf("ordered range violated: %d after %d", k, prev))
		}
		prev = k
		if len(firstFew) < 6 {
			firstFew = append(firstFew, k)
		}
		scanned++
		return true
	})
	fmt.Printf("%-28s state=%v keys≥%d: %d, ascending, first %v\n",
		"phase 3 (ordered range):", sl.State(), low, scanned, firstFew)

	// Phase 4: the burst is gone — the lone survivor demotes the objects.
	work(0, phaseOps)
	report("phase 4 (burst subsided)")

	close(stopReader)
	<-readerDone

	h := reg.MustRegister()
	defer h.Release()
	if got, want := counter.Get(h), totalIncs.Load(); got != want {
		fmt.Printf("LOST UPDATES: counter=%d want=%d\n", got, want)
	} else {
		fmt.Printf("exact across every switch: counter=%d after %d transitions\n",
			got, counter.Transitions())
	}
	traces.print()
	stalls := counter.Probe().Snapshot()
	fmt.Printf("counter stall proxy: %d CAS failures, %d transition spins\n",
		stalls.CASFailures, stalls.SpinWaits)
}
