// Adaptive: a workload whose contention phase-shifts mid-run, driving the
// contention-adaptive objects through their whole state machine:
//
//  1. a lone writer warms the counter and map — the cheap unadjusted
//     representations (atomic cell, striped map) win, so they stay quiescent;
//  2. a burst of writers arrives — CAS failures and lock waits push the
//     windowed stall rate over the promotion threshold and both objects
//     promote themselves to the adjusted representations (per-thread cells,
//     extended segmentation);
//  3. the burst drains away — the lone survivor's samples show writer
//     concurrency collapsed, and both objects demote again.
//
// Readers run through every phase: representation switches never block them.
// The counter is exact at every quiesce point no matter how often it
// switched — increments land in representations that stay live and readable
// for the counter's whole lifetime.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	dego "github.com/adjusted-objects/dego"
)

const (
	burstWriters = 8
	keyRange     = 4096
	phaseOps     = 400_000
)

func main() {
	reg := dego.NewRegistry(burstWriters + 8)
	// An eager policy so the demo converges in fractions of a second; the
	// defaults sample 16x less often.
	policy := dego.AdaptivePolicy{SampleEvery: 64, MinSamples: 2, DemoteSamples: 4}
	counter := dego.NewAdaptiveCounterOn(reg, policy)
	m := dego.NewAdaptiveMapOn[int, int](reg, 8, keyRange, keyRange*2, dego.HashInt, policy)

	var totalIncs atomic.Int64
	report := func(phase string) {
		h := reg.MustRegister()
		defer h.Release()
		fmt.Printf("%-28s counter=%-9v map=%-9v transitions=%d/%d count=%d len=%d\n",
			phase+":", counter.State(), m.State(),
			counter.Transitions(), m.Transitions(), counter.Get(h), m.Len())
	}

	// A reader runs through every phase; switches never block it.
	stopReader := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		h := reg.MustRegister()
		defer h.Release()
		for {
			select {
			case <-stopReader:
				return
			default:
				counter.Get(h)
				m.Get(int(counter.Get(h)) % keyRange)
			}
		}
	}()

	work := func(w, ops int) {
		h := reg.MustRegister()
		defer h.Release()
		for i := 0; i < ops; i++ {
			counter.Inc(h)
			// Commuting writes: writer w owns keys k ≡ w (mod burstWriters).
			k := (i%(keyRange/burstWriters))*burstWriters + w
			if i%3 == 0 {
				m.Remove(h, k)
			} else {
				m.Put(h, k, i)
			}
		}
		totalIncs.Add(int64(ops))
	}

	// Phase 1: a lone writer — no contention, the cheap representations win.
	work(0, phaseOps)
	report("phase 1 (lone writer)")

	// Phase 2: contention arrives — the stall rate promotes both objects.
	var wg sync.WaitGroup
	for w := 0; w < burstWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w, phaseOps)
		}(w)
	}
	wg.Wait()
	if counter.State() == dego.AdaptiveQuiescent && runtime.GOMAXPROCS(0) == 1 {
		// A single-core host cannot produce hardware contention: goroutines
		// timeslice instead of racing, CAS never fails, locks never wait.
		// Feed the probes a synthetic stall burst (the same deterministic
		// stand-in the unit tests use) so the demo still walks the machine.
		fmt.Println("  (single CPU: no real contention possible — injecting synthetic stalls)")
		for i := 0; i < 50_000; i++ {
			counter.Probe().RecordCASFailure()
			m.Probe().RecordLockWait()
		}
		work(0, 256) // just enough boundaries to promote, not to re-demote
	}
	report("phase 2 (contention burst)")

	// Phase 3: the burst is gone — the lone survivor demotes both objects.
	work(0, phaseOps)
	report("phase 3 (burst subsided)")

	close(stopReader)
	<-readerDone

	h := reg.MustRegister()
	defer h.Release()
	if got, want := counter.Get(h), totalIncs.Load(); got != want {
		fmt.Printf("LOST UPDATES: counter=%d want=%d\n", got, want)
	} else {
		fmt.Printf("exact across every switch: counter=%d after %d transitions\n",
			got, counter.Transitions())
	}
	stalls := counter.Probe().Snapshot()
	fmt.Printf("counter stall proxy: %d CAS failures, %d transition spins\n",
		stalls.CASFailures, stalls.SpinWaits)
}
