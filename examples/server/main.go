// Server: the full client/protocol/store stack end to end, in one process.
//
// The demo boots a dego-server on an ephemeral loopback port — RESP subset
// front, per-core sharded event loops, each shard a profile-planned adaptive
// map — then plays both sides of the wire:
//
//  1. a raw wire client pipelines a small social-app session (profile SET,
//     INCR counter, follower SADD, timeline LPUSH/LRANGE) in one flush and
//     reads the replies back in order;
//  2. the retwis network client replays a slice of the Table-2 workload
//     against the same server — generated ops become RESP pipelines, post
//     fanout is resolved client-side from the deterministic social graph;
//  3. the shard plans are printed, showing what the profile planner chose
//     for the keyspace maps (the same CommutingWriters declaration the
//     shard-confinement invariant certifies).
//
// Run it:
//
//	go run ./examples/server
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/adjusted-objects/dego/internal/retwis"
	"github.com/adjusted-objects/dego/internal/server"
)

func main() {
	srv, err := server.New(server.Config{
		Store: server.StoreConfig{Shards: 2, Kind: server.StoreAdaptive},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	addr := srv.Addr().String()
	fmt.Printf("server: listening on %s, 2 shards\n\n", addr)

	// --- 1. raw pipelined session over the wire -------------------------
	kv, err := retwis.DialKV(addr)
	if err != nil {
		log.Fatal(err)
	}
	session := [][]string{
		{"SET", "profile:1", "ada"},
		{"INCR", "stat:posts"},
		{"SADD", "followers:1", "2", "3"},
		{"LPUSH", "timeline:2", "1:1"},
		{"LRANGE", "timeline:2", "0", "-1"},
		{"GET", "profile:1"},
	}
	cmds := make([][][]byte, len(session))
	for i, s := range session {
		args := make([][]byte, len(s))
		for j, a := range s {
			args[j] = []byte(a)
		}
		cmds[i] = args
	}
	reps, err := kv.ExecPipe(cmds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one pipeline flush, replies in order:")
	for i, s := range session {
		fmt.Printf("  %-32s -> %s\n", strings.Join(s, " "), reps[i])
	}
	kv.Close()

	// --- 2. a slice of the retwis workload over the wire ----------------
	p := retwis.DefaultParams()
	p.Users = 500
	p.Threads = 1
	p.MaxDegree = 16
	graph := retwis.BuildGraph(p)
	wkv, err := retwis.DialKV(addr)
	if err != nil {
		log.Fatal(err)
	}
	if err := retwis.SeedKV(wkv, p, graph); err != nil {
		log.Fatal(err)
	}
	cl := retwis.NewNetClient(wkv, graph)
	gen := retwis.NewGenerator(0, p, usersOf(p), false)
	opCount, cmdCount := 0, 0
	for batch := 0; batch < 25; batch++ {
		for i := 0; i < 8; i++ {
			cl.AppendOp(gen.Next())
			opCount++
		}
		cmdCount += cl.Pending()
		if err := cl.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	cl.Close()
	fmt.Printf("\nretwis over the wire: %d ops -> %d commands, store now holds %d keys\n",
		opCount, cmdCount, srv.Store().Len())

	// --- 3. what the planner picked for the shards ----------------------
	fmt.Printf("\nshard plan: %s\n", srv.Store().Plan())
}

func usersOf(p retwis.Params) []retwis.UserID {
	mine := make([]retwis.UserID, p.Users)
	for u := range mine {
		mine[u] = retwis.UserID(u)
	}
	return mine
}
