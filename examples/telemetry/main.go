// Telemetry: a metrics pipeline shaped like a real agent — producers emit
// samples, one aggregator drains them — showing three adjustments working
// together and the contention probe that the paper's §6.2 stall analysis is
// built on:
//
//   - samples flow through an MPSC queue (producers never contend with the
//     consumer's head updates);
//   - per-metric totals land in an increment-only counter per metric (CWSR:
//     the aggregator is the single reader);
//   - the agent configuration lives in an RCU box: readers take an immutable
//     snapshot; the control goroutine replaces it wholesale.
package main

import (
	"fmt"
	"runtime"
	"sync"

	dego "github.com/adjusted-objects/dego"
)

type sample struct {
	Metric int
	Value  int64
}

type agentConfig struct {
	SampleEvery int
	Tags        []string
}

const (
	producers = 6
	metrics   = 4
	perProd   = 50_000
)

func main() {
	reg := dego.NewRegistry(producers + 4)
	// Declared profiles: the pipe is written by many producers and drained
	// by one consumer (MWSR, guard ON: misuse panics); the config has a
	// single control-plane writer (SWMR, an RCU box under the hood); the
	// counters are blind increments read by the aggregator alone (CWSR,
	// per-thread cells).
	pipe := dego.Must(dego.Queue[sample](dego.SingleReader(), dego.Checked()))
	cfg := dego.Must(dego.Ref(&agentConfig{SampleEvery: 10, Tags: []string{"host:a"}},
		dego.SingleWriter(), dego.Checked()))

	counters := make([]*dego.AdjustedCounter, metrics)
	for i := range counters {
		counters[i] = dego.Must(dego.Counter(dego.Blind(), dego.SingleReader(), dego.On(reg)))
	}
	dropped := dego.Must(dego.Counter(dego.Blind(), dego.SingleReader(), dego.On(reg)))

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()
			for i := 0; i < perProd; i++ {
				c := cfg.Get(h) // immutable snapshot, one atomic load
				if i%c.SampleEvery != 0 {
					dropped.Inc(h)
					continue
				}
				pipe.Offer(h, sample{Metric: (p + i) % metrics, Value: int64(i)})
				counters[(p+i)%metrics].Inc(h)
			}
		}(p)
	}

	// Control plane: retune the config mid-flight (single RCU writer).
	control := reg.MustRegister()
	cfg.Update(control, func(old *agentConfig) *agentConfig {
		next := *old
		next.SampleEvery = 5
		next.Tags = append(append([]string(nil), old.Tags...), "tuned:yes")
		return &next
	})

	// Aggregator: the unique consumer.
	aggDone := make(chan int64)
	go func() {
		h := reg.MustRegister()
		defer h.Release()
		var drained, idle int64
		buf := make([]sample, 256)
		for idle < 10_000 {
			n := pipe.Drain(h, buf, len(buf))
			if n == 0 {
				idle++
				runtime.Gosched()
				continue
			}
			idle = 0
			drained += int64(n)
		}
		aggDone <- drained
	}()

	wg.Wait()
	drained := <-aggDone

	var produced int64
	for _, c := range counters {
		produced += c.Get(control)
	}
	fmt.Printf("samples produced: %d, drained: %d, dropped (rate limit): %d\n",
		produced, drained, dropped.Get(control))
	fmt.Printf("final config: every=%d tags=%v\n",
		cfg.Get(control).SampleEvery, cfg.Get(control).Tags)
	if produced != drained {
		fmt.Println("WARNING: pipeline lost samples")
	}
}
