package dego

import (
	"github.com/adjusted-objects/dego/internal/advisor"
	"github.com/adjusted-objects/dego/internal/usage"
)

// This file is the public face of the tuning advisor: WithUsageRecording
// (options.go) attaches a usage recorder to a constructed object, the
// wrapper methods feed it, and Advise() on each Adjusted* wrapper runs the
// inference — observed traffic back to the most adjusted declared profile
// the evidence permits, re-certified against Definition 1. The intended
// loop is the ROADMAP's profile-inference item: build the object
// *unadjusted* with recording, replay a representative workload, then read
// Advise() and move the recommended options into the declaration.

// Advice is one certified recommendation from the tuning advisor: the
// profile the recorded evidence permits (as claims and as ready-to-paste
// option expressions), the Table 1 object it plans to, whether the
// executable Definition 1 certifies it, and the evidence for — plus the
// counter-evidence that blocked stronger claims.
type Advice = advisor.Advice

// UsageTrace is the observation summary a usage recorder accumulates:
// per-method call counts, writer/reader thread cardinality, key-overlap
// and overwrite evidence. Advice.Trace carries the window an Advice was
// inferred from.
type UsageTrace = usage.Trace

// adviseObject runs the advisor over a wrapper's recorder; ok is false
// when the object was constructed without WithUsageRecording.
func adviseObject(plan Plan, rec *usage.Recorder) (Advice, bool) {
	if rec == nil {
		return Advice{}, false
	}
	return advisor.Advise(advisor.Current{
		Datatype: plan.Datatype,
		Variant:  plan.Variant,
		Mode:     plan.Mode.String(),
		Rep:      plan.Rep,
	}, rec.Trace()), true
}

// usageKeyCells sizes a recorder's key-evidence table from the declared
// capacity: four cells per expected key keeps the open-addressing table
// far from saturation (which would block the advisor's key-dependent
// claims), with the package default as the floor.
func usageKeyCells(capacity int) int {
	if c := 4 * capacity; c > usage.DefaultKeyCells {
		return c
	}
	return usage.DefaultKeyCells
}
