package dego

import (
	"math"
	"testing"
)

// The integer fast path feeds two consumers with different needs: the
// node-based maps mask the mixed hash to pick buckets (low bits must
// spread), the adaptive directory shifts it to pick ranges (high bits
// must spread), and the flat tables rely on sequential IDs not clustering
// into probe runs. The distribution tests below pin all three on the
// worst realistic input — dense sequential keys.

// checkSpread hashes n sequential keys through hash, bins them by the low
// and by the high bits into 64 buckets each, and fails if any bucket holds
// more than twice its fair share.
func checkSpread(t *testing.T, name string, n int, hash func(i int) uint64) {
	t.Helper()
	const buckets = 64
	low := make([]int, buckets)
	high := make([]int, buckets)
	for i := 0; i < n; i++ {
		h := hash(i)
		low[h&(buckets-1)]++
		high[h>>(64-6)]++
	}
	limit := 2 * n / buckets
	for b := 0; b < buckets; b++ {
		if low[b] > limit {
			t.Errorf("%s: low-bit bucket %d holds %d of %d (fair %d)", name, b, low[b], n, n/buckets)
		}
		if high[b] > limit {
			t.Errorf("%s: high-bit bucket %d holds %d of %d (fair %d)", name, b, high[b], n, n/buckets)
		}
	}
}

func TestFastIntHasherDistribution(t *testing.T) {
	const n = 1 << 14
	h32 := fastIntHasher[int32]()
	hu32 := fastIntHasher[uint32]()
	h64 := fastIntHasher[int64]()
	hu64 := fastIntHasher[uint64]()
	checkSpread(t, "int32", n, func(i int) uint64 { return h32(int32(i)) })
	checkSpread(t, "uint32", n, func(i int) uint64 { return hu32(uint32(i)) })
	checkSpread(t, "int64", n, func(i int) uint64 { return h64(int64(i)) })
	checkSpread(t, "uint64", n, func(i int) uint64 { return hu64(uint64(i)) })
	// Negative sequential keys (IDs counting down) must spread too.
	checkSpread(t, "int32-neg", n, func(i int) uint64 { return h32(int32(-i)) })
	checkSpread(t, "int64-neg", n, func(i int) uint64 { return h64(int64(-i)) })
}

// TestFastIntHasherWidthIsolation pins the zero-extension contract: a
// 4-byte key hashes by its 32 bits only, so int32(-1) and int64(-1) —
// different bit widths of "the same" value — hash differently, while the
// same bits at the same width always agree.
func TestFastIntHasherWidthIsolation(t *testing.T) {
	h32 := fastIntHasher[int32]()
	hu32 := fastIntHasher[uint32]()
	h64 := fastIntHasher[int64]()
	if h32(-1) != hu32(math.MaxUint32) {
		t.Error("int32(-1) and uint32(max) share bits but hash differently")
	}
	if h32(-1) == h64(-1) {
		t.Error("int32(-1) zero-extends to 0xFFFFFFFF, not 64 set bits; hashes must differ")
	}
}

type namedID uint64
type narrowID int16

func TestIntKeyCodecRoundTrip(t *testing.T) {
	checkRoundTrip(t, []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 12345, -98765})
	checkRoundTrip(t, []uint32{0, 1, math.MaxUint32, 7})
	checkRoundTrip(t, []int64{0, 1, -1, math.MaxInt64, math.MinInt64})
	checkRoundTrip(t, []uint64{0, 1, math.MaxUint64})
	checkRoundTrip(t, []int8{0, -128, 127})
	checkRoundTrip(t, []uint16{0, math.MaxUint16})
	// Named types are the point: retwis IDs flow through the codec.
	checkRoundTrip(t, []namedID{0, 1, math.MaxUint64})
	checkRoundTrip(t, []narrowID{0, -1, math.MaxInt16, math.MinInt16})

	// Injectivity within a width: distinct keys encode distinctly.
	enc, _, _ := intKeyCodec[int32]()
	seen := map[uint64]int32{}
	for k := int32(-1000); k < 1000; k++ {
		u := enc(k)
		if prev, dup := seen[u]; dup {
			t.Fatalf("enc(%d) == enc(%d) == %#x", k, prev, u)
		}
		seen[u] = k
	}
}

func checkRoundTrip[K comparable](t *testing.T, keys []K) {
	t.Helper()
	enc, dec, ok := intKeyCodec[K]()
	if !ok {
		var zero K
		t.Fatalf("intKeyCodec[%T]: no codec for an integer kind", zero)
	}
	for _, k := range keys {
		if got := dec(enc(k)); got != k {
			t.Errorf("round trip %T: %v → %#x → %v", k, k, enc(k), got)
		}
	}
}

func TestIntKeyCodecRejectsNonIntegers(t *testing.T) {
	if _, _, ok := intKeyCodec[string](); ok {
		t.Error("codec accepted string")
	}
	if _, _, ok := intKeyCodec[float64](); ok {
		t.Error("codec accepted float64")
	}
	if _, _, ok := intKeyCodec[[2]int](); ok {
		t.Error("codec accepted [2]int")
	}
	type point struct{ x, y int }
	if _, _, ok := intKeyCodec[point](); ok {
		t.Error("codec accepted struct")
	}
	// bool is one byte but not an integer kind.
	if _, _, ok := intKeyCodec[bool](); ok {
		t.Error("codec accepted bool")
	}
}
