package dego

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// Integration tests exercise the public facade end to end: every constructor
// is used the way the README shows, across goroutines, under -race in CI.

func TestFacadeCounterFamily(t *testing.T) {
	reg := NewRegistry(16)
	c := NewCounterOn(reg, false)
	ad := NewAdder(8)
	at := NewAtomicCounter()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()
			for j := 0; j < 10_000; j++ {
				c.Inc(h)
				ad.Inc(h)
				at.IncrementAndGet()
			}
		}()
	}
	wg.Wait()
	reader := reg.MustRegister()
	defer reader.Release()
	const want = 80_000
	if got := c.Get(reader); got != want {
		t.Errorf("Counter = %d, want %d", got, want)
	}
	if got := ad.Sum(); got != want {
		t.Errorf("Adder = %d, want %d", got, want)
	}
	if got := at.Get(); got != want {
		t.Errorf("AtomicCounter = %d, want %d", got, want)
	}
}

func TestFacadeWriteOnceAndRCU(t *testing.T) {
	reg := NewRegistry(8)
	h := reg.MustRegister()
	w := NewWriteOnceOn[string](reg)
	v1, v2 := "a", "b"
	if err := w.Set(h, &v1); err != nil {
		t.Fatal(err)
	}
	if err := w.Set(h, &v2); !errors.Is(err, ErrAlreadySet) {
		t.Fatalf("err = %v, want ErrAlreadySet", err)
	}
	if got := w.Get(h); got != &v1 {
		t.Fatal("write-once value lost")
	}

	box := NewRCUBox(&[]string{"x"}, false)
	box.Update(h, func(old *[]string) *[]string {
		next := append(append([]string(nil), *old...), "y")
		return &next
	})
	if got := *box.Read(); len(got) != 2 || got[1] != "y" {
		t.Fatalf("RCU snapshot = %v", got)
	}

	r := NewAtomicRef[int](nil)
	one := 1
	if !r.CompareAndSet(nil, &one) || r.Get() != &one {
		t.Fatal("AtomicRef CAS broken")
	}
}

func TestFacadeQueuesPipeline(t *testing.T) {
	reg := NewRegistry(8)
	mpsc := NewMPSCQueue[int](false)
	ms := NewMSQueue[int]()

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()
			for i := 0; i < 5_000; i++ {
				mpsc.Offer(h, p*5_000+i)
				ms.Offer(p*5_000 + i)
			}
		}(p)
	}
	wg.Wait()
	consumer := reg.MustRegister()
	defer consumer.Release()
	got := 0
	for {
		if _, ok := mpsc.Poll(consumer); !ok {
			break
		}
		got++
	}
	if got != 20_000 {
		t.Errorf("MPSC drained %d, want 20000", got)
	}
	if ms.Len() != 20_000 {
		t.Errorf("MS len = %d, want 20000", ms.Len())
	}
}

func TestFacadeMapsAgree(t *testing.T) {
	reg := NewRegistry(8)
	h := reg.MustRegister()
	seg := NewSegmentedMapOn[string, int](reg, 128, 256, HashString, false)
	swmr := NewSWMRMap[string, int](128, HashString, false)
	striped := NewStripedMap[string, int](16, 128, HashString)
	oracle := map[string]int{}

	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i%97)
		seg.Put(h, k, i)
		swmr.Put(h, k, i)
		striped.Put(k, i)
		oracle[k] = i
		if i%5 == 0 {
			seg.Remove(h, k)
			swmr.Remove(h, k)
			striped.Remove(k)
			delete(oracle, k)
		}
	}
	for k, want := range oracle {
		for name, get := range map[string]func(string) (int, bool){
			"segmented": seg.Get,
			"swmr":      swmr.Get,
			"striped":   striped.Get,
		} {
			if got, ok := get(k); !ok || got != want {
				t.Fatalf("%s.Get(%s) = (%d,%v), want %d", name, k, got, ok, want)
			}
		}
	}
	if seg.Len() != len(oracle) || swmr.Len() != len(oracle) || striped.Len() != len(oracle) {
		t.Fatalf("lens: seg=%d swmr=%d striped=%d oracle=%d",
			seg.Len(), swmr.Len(), striped.Len(), len(oracle))
	}
}

func TestFacadeSkipListsOrdered(t *testing.T) {
	reg := NewRegistry(8)
	h := reg.MustRegister()
	seg := skipListViaFacade(reg)
	swmr := NewSWMRSkipList[int, string](false)
	conc := NewConcurrentSkipList[int, string]()

	for _, k := range []int{5, 1, 9, 3, 7} {
		v := fmt.Sprintf("v%d", k)
		seg.Put(h, k, v)
		swmr.Put(h, k, v)
		conc.Put(k, v)
	}
	wantOrder := []int{1, 3, 5, 7, 9}
	check := func(name string, rng func(func(int, string) bool)) {
		var got []int
		rng(func(k int, v string) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(wantOrder) {
			t.Fatalf("%s: %v", name, got)
		}
		for i := range wantOrder {
			if got[i] != wantOrder[i] {
				t.Fatalf("%s order = %v", name, got)
			}
		}
	}
	check("segmented", seg.Range)
	check("swmr", swmr.Range)
	check("concurrent", conc.Range)
}

func skipListViaFacade(r *Registry) *SegmentedSkipList[int, string] {
	return NewSegmentedSkipListOn[int, string](r, 256, HashInt, false)
}

func TestFacadeSetsAndGuards(t *testing.T) {
	reg := NewRegistry(8)
	h := reg.MustRegister()
	seg := NewSegmentedSetOn[int](reg, 64, HashInt, false)
	striped := NewStripedSet[int](8, 64, HashInt)
	for i := 0; i < 50; i++ {
		seg.Add(h, i)
		striped.Add(i)
	}
	if seg.Len() != 50 || striped.Len() != 50 {
		t.Fatal("set lens wrong")
	}

	// Guards on: a second consumer on a checked MPSC queue must panic.
	q := NewMPSCQueue[int](true)
	c1, c2 := reg.MustRegister(), reg.MustRegister()
	q.Offer(c1, 1)
	q.Offer(c2, 2)
	if _, ok := q.Poll(c1); !ok {
		t.Fatal("consumer poll failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second consumer did not trip the guard")
			}
		}()
		q.Poll(c2)
	}()
}

func TestModesExported(t *testing.T) {
	for _, m := range []Mode{ModeAll, ModeSWMR, ModeMWSR, ModeCWMR, ModeCWSR} {
		if !m.Valid() {
			t.Errorf("mode %v invalid through facade", m)
		}
	}
}

func TestFacadeScalesWithGOMAXPROCS(t *testing.T) {
	// Sanity: the adjusted counter completes a parallel workload without
	// degrading by orders of magnitude versus sequential — a cheap guard
	// against accidental serialization (full scalability claims live in the
	// benchmarks).
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skip("single-proc environment")
	}
	reg := NewRegistry(procs + 1)
	c := NewCounterOn(reg, false)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()
			for j := 0; j < 200_000; j++ {
				c.Inc(h)
			}
		}()
	}
	wg.Wait()
	r := reg.MustRegister()
	if got := c.Get(r); got != int64(procs)*200_000 {
		t.Fatalf("count = %d", got)
	}
}
