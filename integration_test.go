package dego

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// Integration tests exercise the public facade end to end: every object is
// constructed through the profile API the way the README shows, across
// goroutines, under -race in CI.

func TestFacadeCounterFamily(t *testing.T) {
	reg := NewRegistry(16)
	c := Must(Counter(Blind(), SingleReader(), On(reg)))
	ad := Must(Counter(Blind(), Capacity(8)))
	at := Must(Counter())

	if got, want := c.Plan().Rep, "IncrementOnlyCounter"; got != want {
		t.Fatalf("CWSR counter planned %q, want %q", got, want)
	}
	if got, want := ad.Plan().Rep, "Adder"; got != want {
		t.Fatalf("blind counter planned %q, want %q", got, want)
	}
	if got, want := at.Plan().Rep, "AtomicCounter"; got != want {
		t.Fatalf("unadjusted counter planned %q, want %q", got, want)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()
			for j := 0; j < 10_000; j++ {
				c.Inc(h)
				ad.Inc(h)
				at.Inc(h)
			}
		}()
	}
	wg.Wait()
	reader := reg.MustRegister()
	defer reader.Release()
	const want = 80_000
	if got := c.Get(reader); got != want {
		t.Errorf("Counter = %d, want %d", got, want)
	}
	if got := ad.Get(reader); got != want {
		t.Errorf("Adder = %d, want %d", got, want)
	}
	if got := at.Get(reader); got != want {
		t.Errorf("AtomicCounter = %d, want %d", got, want)
	}
}

func TestFacadeWriteOnceAndRCU(t *testing.T) {
	reg := NewRegistry(8)
	h := reg.MustRegister()
	w := Must(Ref[string](nil, WriteOnce(), On(reg)))
	v1, v2 := "a", "b"
	if err := w.Set(h, &v1); err != nil {
		t.Fatal(err)
	}
	if err := w.Set(h, &v2); !errors.Is(err, ErrAlreadySet) {
		t.Fatalf("err = %v, want ErrAlreadySet", err)
	}
	if got := w.Get(h); got != &v1 {
		t.Fatal("write-once value lost")
	}

	box := Must(Ref(&[]string{"x"}, SingleWriter()))
	if got, want := box.Plan().Rep, "RCUBox"; got != want {
		t.Fatalf("SWMR ref planned %q, want %q", got, want)
	}
	box.Update(h, func(old *[]string) *[]string {
		next := append(append([]string(nil), *old...), "y")
		return &next
	})
	if got := *box.Get(h); len(got) != 2 || got[1] != "y" {
		t.Fatalf("RCU snapshot = %v", got)
	}

	r := Must(Ref[int](nil)).Representation().(*AtomicRef[int])
	one := 1
	if !r.CompareAndSet(nil, &one) || r.Get() != &one {
		t.Fatal("AtomicRef CAS broken")
	}
}

func TestFacadeQueuesPipeline(t *testing.T) {
	reg := NewRegistry(8)
	mpsc := Must(Queue[int](SingleReader()))
	ms := Must(Queue[int]())

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()
			for i := 0; i < 5_000; i++ {
				mpsc.Offer(h, p*5_000+i)
				ms.Offer(h, p*5_000+i)
			}
		}(p)
	}
	wg.Wait()
	consumer := reg.MustRegister()
	defer consumer.Release()
	got := 0
	for {
		if _, ok := mpsc.Poll(consumer); !ok {
			break
		}
		got++
	}
	if got != 20_000 {
		t.Errorf("MPSC drained %d, want 20000", got)
	}
	if n := ms.Representation().(*MSQueue[int]).Len(); n != 20_000 {
		t.Errorf("MS len = %d, want 20000", n)
	}
}

func TestFacadeMapsAgree(t *testing.T) {
	reg := NewRegistry(8)
	h := reg.MustRegister()
	seg := Must(Map[string, int](CommutingWriters(), On(reg), Capacity(128), Buckets(256)))
	swmr := Must(Map[string, int](SingleWriter(), Capacity(128)))
	striped := Must(Map[string, int](Stripes(16), Capacity(128)))
	oracle := map[string]int{}

	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%d", i%97)
		seg.Put(h, k, i)
		swmr.Put(h, k, i)
		striped.Put(h, k, i)
		oracle[k] = i
		if i%5 == 0 {
			seg.Remove(h, k)
			swmr.Remove(h, k)
			striped.Remove(h, k)
			delete(oracle, k)
		}
	}
	for k, want := range oracle {
		for name, get := range map[string]func(string) (int, bool){
			"segmented": seg.Get,
			"swmr":      swmr.Get,
			"striped":   striped.Get,
		} {
			if got, ok := get(k); !ok || got != want {
				t.Fatalf("%s.Get(%s) = (%d,%v), want %d", name, k, got, ok, want)
			}
		}
	}
	if seg.Len() != len(oracle) || swmr.Len() != len(oracle) || striped.Len() != len(oracle) {
		t.Fatalf("lens: seg=%d swmr=%d striped=%d oracle=%d",
			seg.Len(), swmr.Len(), striped.Len(), len(oracle))
	}
}

func TestFacadeSkipListsOrdered(t *testing.T) {
	reg := NewRegistry(8)
	h := reg.MustRegister()
	seg := Must(Ordered[int, string](CommutingWriters(), On(reg), Buckets(256)))
	swmr := Must(Ordered[int, string](SingleWriter()))
	conc := Must(Ordered[int, string]())

	for _, k := range []int{5, 1, 9, 3, 7} {
		v := fmt.Sprintf("v%d", k)
		seg.Put(h, k, v)
		swmr.Put(h, k, v)
		conc.Put(h, k, v)
	}
	wantOrder := []int{1, 3, 5, 7, 9}
	check := func(name string, rng func(func(int, string) bool)) {
		var got []int
		rng(func(k int, v string) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(wantOrder) {
			t.Fatalf("%s: %v", name, got)
		}
		for i := range wantOrder {
			if got[i] != wantOrder[i] {
				t.Fatalf("%s order = %v", name, got)
			}
		}
	}
	check("segmented", seg.Range)
	check("swmr", swmr.Range)
	check("concurrent", conc.Range)

	// RangeFrom and RangeBetween hold on every representation.
	for name, o := range map[string]*AdjustedOrdered[int, string]{
		"segmented": seg, "swmr": swmr, "concurrent": conc,
	} {
		var from []int
		o.RangeFrom(5, func(k int, _ string) bool { from = append(from, k); return true })
		if len(from) != 3 || from[0] != 5 || from[2] != 9 {
			t.Fatalf("%s RangeFrom(5) = %v", name, from)
		}
		var between []int
		o.RangeBetween(3, 9, func(k int, _ string) bool { between = append(between, k); return true })
		if len(between) != 3 || between[0] != 3 || between[2] != 7 {
			t.Fatalf("%s RangeBetween(3,9) = %v", name, between)
		}
	}
}

func TestFacadeSetsAndGuards(t *testing.T) {
	reg := NewRegistry(8)
	h := reg.MustRegister()
	seg := Must(Set[int](CommutingWriters(), On(reg), Capacity(64)))
	striped := Must(Set[int](Stripes(8), Capacity(64)))
	for i := 0; i < 50; i++ {
		seg.Add(h, i)
		striped.Add(h, i)
	}
	if seg.Len() != 50 || striped.Len() != 50 {
		t.Fatal("set lens wrong")
	}

	// Guards on: a second consumer on a checked MPSC queue must panic.
	q := Must(Queue[int](SingleReader(), Checked()))
	c1, c2 := reg.MustRegister(), reg.MustRegister()
	q.Offer(c1, 1)
	q.Offer(c2, 2)
	if _, ok := q.Poll(c1); !ok {
		t.Fatal("consumer poll failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second consumer did not trip the guard")
			}
		}()
		q.Poll(c2)
	}()
}

func TestModesExported(t *testing.T) {
	for _, m := range []Mode{ModeAll, ModeSWMR, ModeMWSR, ModeCWMR, ModeCWSR} {
		if !m.Valid() {
			t.Errorf("mode %v invalid through facade", m)
		}
	}
}

func TestFacadeScalesWithGOMAXPROCS(t *testing.T) {
	// Sanity: the adjusted counter completes a parallel workload without
	// degrading by orders of magnitude versus sequential — a cheap guard
	// against accidental serialization (full scalability claims live in the
	// benchmarks).
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skip("single-proc environment")
	}
	reg := NewRegistry(procs + 1)
	c := Must(Counter(Blind(), SingleReader(), On(reg)))
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := reg.MustRegister()
			defer h.Release()
			for j := 0; j < 200_000; j++ {
				c.Inc(h)
			}
		}()
	}
	wg.Wait()
	r := reg.MustRegister()
	if got := c.Get(r); got != int64(procs)*200_000 {
		t.Fatalf("count = %d", got)
	}
}
