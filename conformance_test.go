package dego

// Conformance tests: every library object is driven side by side with its
// Table 1 sequential specification (the spec automaton is the oracle). This
// closes the loop between the theory half of the reproduction and the
// implementation half — the same spec.DataType that yields consensus numbers
// and indistinguishability graphs decides whether the Go objects behave.

import (
	"math/rand"
	"testing"

	"github.com/adjusted-objects/dego/internal/core"
	"github.com/adjusted-objects/dego/internal/counter"
	"github.com/adjusted-objects/dego/internal/queue"
	"github.com/adjusted-objects/dego/internal/ref"
	"github.com/adjusted-objects/dego/internal/set"
	"github.com/adjusted-objects/dego/internal/spec"
	"github.com/adjusted-objects/dego/internal/stats"
)

func TestCounterConformsToC3(t *testing.T) {
	// The adjusted counter implements (C3, CWSR): blind inc, readable, no
	// reset, no rmw. Drive both with a random op stream.
	c3 := spec.Counter(spec.C3)
	reg := core.NewRegistry(4)
	w, r := reg.MustRegister(), reg.MustRegister()
	impl := counter.NewIncrementOnly(reg, false)
	st := c3.Init

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		if rng.Intn(3) > 0 {
			impl.Inc(w)
			st, _ = c3.Op("inc").Exec(st)
		} else {
			var v spec.Value
			st, v = c3.Op("get").Exec(st)
			if got := impl.Get(r); !spec.ValueEq(spec.Value(got), v) {
				t.Fatalf("step %d: impl=%d spec=%v", i, got, v)
			}
		}
	}
	// Interface narrowing is structural: IncrementOnly has no Reset and no
	// read-modify-write — the d-arrow of Figure 3 made code, checked by the
	// compiler rather than a runtime assertion.
}

func TestQueueConformsToQ1(t *testing.T) {
	q1 := spec.Queue()
	reg := core.NewRegistry(2)
	h := reg.MustRegister()
	mpsc := queue.NewMPSC[int](nil, false)
	ms := queue.NewMS[int](nil)
	st := q1.Init

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		if rng.Intn(2) == 0 {
			v := rng.Intn(64)
			mpsc.Offer(h, v)
			ms.Offer(v)
			st, _ = q1.Op("offer", v).Exec(st)
		} else {
			var want spec.Value
			st, want = q1.Op("poll").Exec(st)
			gv, gok := mpsc.Poll(h)
			mv, mok := ms.Poll()
			if spec.IsBottom(want) {
				if gok || mok {
					t.Fatalf("step %d: poll on empty returned a value", i)
				}
			} else if !gok || !mok || gv != want.(int) || mv != want.(int) {
				t.Fatalf("step %d: impl=(%d,%v)/(%d,%v) spec=%v", i, gv, gok, mv, mok, want)
			}
		}
	}
}

func TestRefConformsToR2(t *testing.T) {
	r2 := spec.Ref(spec.R2)
	reg := core.NewRegistry(2)
	h := reg.MustRegister()
	impl := ref.NewWriteOnce[int](reg)
	st := r2.Init
	boxes := map[int]*int{}
	box := func(v int) *int {
		if boxes[v] == nil {
			vv := v
			boxes[v] = &vv
		}
		return boxes[v]
	}

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		if rng.Intn(2) == 0 {
			v := 1 + rng.Intn(4)
			// The spec fails silently when s ≠ ⊥; the implementation
			// reports the failure via TrySet = false. Both leave the state
			// unchanged.
			specBefore := st.(*spec.RefState).Set
			st, _ = r2.Op("set", v).Exec(st)
			got := impl.TrySet(h, box(v))
			if got == specBefore {
				t.Fatalf("step %d: TrySet=%v but spec pre was satisfied=%v", i, got, !specBefore)
			}
		} else {
			var want spec.Value
			st, want = r2.Op("get").Exec(st)
			got := impl.Get(h)
			if spec.IsBottom(want) {
				if got != nil {
					t.Fatalf("step %d: Get=%v, want nil", i, got)
				}
			} else if got == nil || *got != want.(int) {
				t.Fatalf("step %d: Get=%v, want %v", i, got, want)
			}
		}
	}
}

func TestSegmentedSetConformsToS2(t *testing.T) {
	// The segmented set realizes the blind S2 writes (the S3 spec additionally
	// voids remove; the library keeps the useful S2 remove — a weaker
	// adjustment along the same r-arrow).
	s2 := spec.Set(spec.S2)
	reg := core.NewRegistry(4)
	h := reg.MustRegister()
	impl := set.NewSegmented[int](reg, 64, 128, func(k int) uint64 {
		return stats.Hash64(uint64(k))
	}, false)
	st := s2.Init

	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 3000; i++ {
		x := rng.Intn(48)
		switch rng.Intn(3) {
		case 0:
			impl.Add(h, x)
			st, _ = s2.Op("add", x).Exec(st)
		case 1:
			impl.Remove(h, x)
			st, _ = s2.Op("remove", x).Exec(st)
		default:
			var want spec.Value
			st, want = s2.Op("contains", x).Exec(st)
			if got := impl.Contains(x); got != want.(bool) {
				t.Fatalf("step %d: contains(%d)=%v, spec=%v", i, x, got, want)
			}
		}
	}
	// Final states agree.
	specSize := len(st.(*spec.SetState).Elems)
	if impl.Len() != specSize {
		t.Fatalf("final size: impl=%d spec=%d", impl.Len(), specSize)
	}
}

func TestSegmentedMapConformsToM2(t *testing.T) {
	m2 := spec.Map(spec.M2)
	reg := core.NewRegistry(4)
	h := reg.MustRegister()
	impl := Must(Map[int, int](CommutingWriters(), On(reg), Capacity(64), Buckets(128)))
	st := m2.Init

	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 3000; i++ {
		k := rng.Intn(48)
		switch rng.Intn(3) {
		case 0:
			v := rng.Intn(1000)
			impl.Put(h, k, v)
			st, _ = m2.Op("put", k, v).Exec(st)
		case 1:
			impl.Remove(h, k)
			st, _ = m2.Op("remove", k).Exec(st)
		default:
			var want spec.Value
			st, want = m2.Op("contains", k).Exec(st)
			if got := impl.Contains(k); got != want.(bool) {
				t.Fatalf("step %d: contains(%d)=%v, spec=%v", i, k, got, want)
			}
			// Values agree with the spec state too.
			if sv, ok := st.(*spec.MapState).Entries[k]; ok {
				if got, gok := impl.Get(k); !gok || got != sv {
					t.Fatalf("step %d: get(%d)=(%d,%v), spec=%d", i, k, got, gok, sv)
				}
			}
		}
	}
}
