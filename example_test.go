package dego_test

import (
	"errors"
	"fmt"

	"github.com/adjusted-objects/dego"
)

// ExampleCounter declares a counter profile — blind increments, one reader —
// and lets the planner pick the representation: the paper's (C3, CWSR)
// per-thread cells, no CAS anywhere.
func ExampleCounter() {
	h := dego.MustRegister()
	defer h.Release()

	events, err := dego.Counter(dego.Blind(), dego.SingleReader())
	if err != nil {
		panic(err)
	}
	fmt.Println("plan:", events.Plan())

	for i := 0; i < 1000; i++ {
		events.Inc(h)
	}
	fmt.Println("count:", events.Get(h))
	// Output:
	// plan: Counter (C3, CWSR) → IncrementOnlyCounter
	// count: 1000
}

// ExampleMap declares a commuting-writers map profile. String keys hash with
// the built-in default hasher, so no WithHash is needed; the planner yields
// the extended segmentation of the paper's (M2, CWMR).
func ExampleMap() {
	h := dego.MustRegister()
	defer h.Release()

	m, err := dego.Map[string, int](dego.CommutingWriters(), dego.Capacity(1024))
	if err != nil {
		panic(err)
	}
	fmt.Println("plan:", m.Plan())

	m.Put(h, "alpha", 1)
	m.Put(h, "beta", 2)
	v, ok := m.Get("beta")
	fmt.Println("beta:", v, ok, "len:", m.Len())
	// Output:
	// plan: Map (M2, CWMR) → SegmentedMap
	// beta: 2 true len: 2
}

// ExampleMap_adaptive declares a commuting-writers map with Adaptive: the
// planner yields the contention-adaptive map, here walked through a forced
// promote/demote cycle. Contents survive every representation switch, and
// while promoted the map overlays its segmented shadow on the frozen striped
// backing (updates shadow backed keys, removals tombstone them).
func ExampleMap_adaptive() {
	h := dego.MustRegister()
	defer h.Release()

	m := dego.Must(dego.Map[string, int](dego.CommutingWriters(), dego.Adaptive(),
		dego.Capacity(1024))).Adaptive()
	m.Put(h, "alpha", 1)
	m.Put(h, "beta", 2)
	fmt.Println("state:", m.State(), "len:", m.Len())

	m.ForcePromote()      // striped map freezes as backing, segmented map on top
	m.Put(h, "alpha", 10) // shadows the backed copy
	m.Remove(h, "beta")   // tombstones the backed copy
	m.Put(h, "gamma", 3)  // lives only in the segmented shadow
	a, _ := m.Get("alpha")
	_, betaOK := m.Get("beta")
	fmt.Println("state:", m.State(), "alpha:", a, "beta present:", betaOK)

	m.ForceDemote() // shadow + tombstones drain into a fresh striped map
	g, _ := m.Get("gamma")
	fmt.Println("state:", m.State(), "gamma:", g, "len:", m.Len())
	// Output:
	// state: quiescent len: 2
	// state: promoted alpha: 10 beta present: false
	// state: quiescent gamma: 3 len: 2
}

// ExampleOrdered declares an adaptive commuting-writers ordered profile and
// shows the ordered contract holding across a promotion: Range stays
// strictly key-ordered even while the iteration merges the live segmented
// shadow with the frozen lock-free backing.
func ExampleOrdered() {
	h := dego.MustRegister()
	defer h.Release()

	o := dego.Must(dego.Ordered[int, string](dego.CommutingWriters(), dego.Adaptive(),
		dego.Buckets(1024)))
	fmt.Println("plan:", o.Plan())

	sl := o.Adaptive()
	for _, k := range []int{30, 10, 50} {
		sl.Put(h, k, fmt.Sprintf("v%d", k))
	}
	sl.ForcePromote()
	sl.Put(h, 20, "v20") // fresh key interleaves with the backed ones
	sl.Remove(h, 30)     // tombstone suppressed from the merged stream

	sl.Range(func(k int, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// plan: Ordered (M2, CWMR) → AdaptiveSkipList (adaptive)
	// 10 v10
	// 20 v20
	// 50 v50
}

// ExampleSet declares an adaptive commuting-writers membership set and
// exercises it across a promote/demote cycle; zero-size values ride on the
// engine's tombstone sentinel, so removals of backed elements stay removals.
func ExampleSet() {
	h := dego.MustRegister()
	defer h.Release()

	s := dego.Must(dego.Set[string](dego.CommutingWriters(), dego.Adaptive(),
		dego.Capacity(1024))).Adaptive()
	s.Add(h, "reader")
	s.Add(h, "writer")
	s.ForcePromote()
	s.Remove(h, "reader") // tombstones the backed element
	s.Add(h, "admin")
	fmt.Println("reader:", s.Contains("reader"), "admin:", s.Contains("admin"))

	s.ForceDemote()
	fmt.Println("len:", s.Len(), "ranges:", s.Ranges())
	// Output:
	// reader: false admin: true
	// len: 2 ranges: 1
}

// ExampleQueue declares a single-consumer queue profile: the planner yields
// the multi-producer single-consumer queue of the paper's (Q1, MWSR).
func ExampleQueue() {
	h := dego.MustRegister()
	defer h.Release()

	q := dego.Must(dego.Queue[string](dego.SingleReader()))
	fmt.Println("plan:", q.Plan())

	q.Offer(h, "a")
	q.Offer(h, "b")
	v, _ := q.Poll(h)
	fmt.Println("head:", v)
	// Output:
	// plan: Queue (Q1, MWSR) → MPSCQueue
	// head: a
}

// ExampleRef declares a write-once reference profile (the paper's
// Listing 1): initialized once, read forever after without synchronization
// cost; a second initialization fails with ErrAlreadySet.
func ExampleRef() {
	h := dego.MustRegister()
	defer h.Release()

	type config struct{ MaxConns int }
	cfg := dego.Must(dego.Ref[config](nil, dego.WriteOnce()))
	fmt.Println("plan:", cfg.Plan())

	if err := cfg.Set(h, &config{MaxConns: 128}); err != nil {
		panic(err)
	}
	err := cfg.Set(h, &config{MaxConns: 256})
	fmt.Println("second set:", errors.Is(err, dego.ErrAlreadySet))
	fmt.Println("MaxConns:", cfg.Get(h).MaxConns)
	// Output:
	// plan: Ref (R2, ALL) → WriteOnceRef
	// second set: true
	// MaxConns: 128
}

// ExampleErrInvalidProfile shows the planner rejecting an impossible
// declaration at construction: there is no single-reader map in the §4.2
// catalog, so the profile fails with a typed error instead of building an
// object whose contract nothing can certify.
func ExampleErrInvalidProfile() {
	_, err := dego.Map[string, int](dego.SingleReader())
	fmt.Println("invalid:", errors.Is(err, dego.ErrInvalidProfile))

	var perr *dego.InvalidProfileError
	if errors.As(err, &perr) {
		fmt.Println("datatype:", perr.Datatype)
	}
	// Output:
	// invalid: true
	// datatype: Map
}
