package dego_test

import (
	"fmt"

	"github.com/adjusted-objects/dego"
)

// ExampleNewAdaptiveMap walks the adaptive hash map through a forced
// promote/demote cycle: contents survive every representation switch, and
// while promoted the map overlays its segmented shadow on the frozen striped
// backing (updates shadow backed keys, removals tombstone them).
func ExampleNewAdaptiveMap() {
	h := dego.MustRegister()
	defer h.Release()

	m := dego.NewAdaptiveMap[string, int](1024, dego.HashString)
	m.Put(h, "alpha", 1)
	m.Put(h, "beta", 2)
	fmt.Println("state:", m.State(), "len:", m.Len())

	m.ForcePromote()      // striped map freezes as backing, segmented map on top
	m.Put(h, "alpha", 10) // shadows the backed copy
	m.Remove(h, "beta")   // tombstones the backed copy
	m.Put(h, "gamma", 3)  // lives only in the segmented shadow
	a, _ := m.Get("alpha")
	_, betaOK := m.Get("beta")
	fmt.Println("state:", m.State(), "alpha:", a, "beta present:", betaOK)

	m.ForceDemote() // shadow + tombstones drain into a fresh striped map
	g, _ := m.Get("gamma")
	fmt.Println("state:", m.State(), "gamma:", g, "len:", m.Len())
	// Output:
	// state: quiescent len: 2
	// state: promoted alpha: 10 beta present: false
	// state: quiescent gamma: 3 len: 2
}

// ExampleNewAdaptiveSkipList shows the ordered contract holding across a
// promotion: Range stays strictly key-ordered even while the iteration
// merges the live segmented shadow with the frozen lock-free backing.
func ExampleNewAdaptiveSkipList() {
	h := dego.MustRegister()
	defer h.Release()

	sl := dego.NewAdaptiveSkipList[int, string](1024, dego.HashInt)
	for _, k := range []int{30, 10, 50} {
		sl.Put(h, k, fmt.Sprintf("v%d", k))
	}
	sl.ForcePromote()
	sl.Put(h, 20, "v20") // fresh key interleaves with the backed ones
	sl.Remove(h, 30)     // tombstone suppressed from the merged stream

	sl.Range(func(k int, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 10 v10
	// 20 v20
	// 50 v50
}

// ExampleNewAdaptiveSet exercises the adaptive membership set across a
// promote/demote cycle; zero-size values ride on the engine's tombstone
// sentinel, so removals of backed elements stay removals.
func ExampleNewAdaptiveSet() {
	h := dego.MustRegister()
	defer h.Release()

	s := dego.NewAdaptiveSet[string](1024, dego.HashString)
	s.Add(h, "reader")
	s.Add(h, "writer")
	s.ForcePromote()
	s.Remove(h, "reader") // tombstones the backed element
	s.Add(h, "admin")
	fmt.Println("reader:", s.Contains("reader"), "admin:", s.Contains("admin"))

	s.ForceDemote()
	fmt.Println("len:", s.Len(), "ranges:", s.Ranges())
	// Output:
	// reader: false admin: true
	// len: 2 ranges: 1
}
