package dego

import (
	"fmt"

	"github.com/adjusted-objects/dego/internal/spec"
)

// Plan is the planner's decision for one declared profile: which Table 1
// object the profile names and which representation the library chose for
// it. Every object built by a profile constructor carries its Plan (the
// Plan method), so a program can audit why it got the representation it
// got — and the tests cross-check every plan against the executable
// Definition 1 in internal/spec.
type Plan struct {
	// Datatype is the profile constructor ("Counter", "Map", "Set",
	// "Ordered", "Queue", "Ref"). Ordered maps share Table 1's map rows:
	// the catalog narrows interfaces, and an ordered map narrows M1's
	// interface no differently than a hash map does.
	Datatype string
	// Variant is the declared Table 1 row ("C2", "M2", ...).
	Variant string
	// Mode is the declared access-permission mode.
	Mode Mode
	// Rep names the chosen representation ("SegmentedMap", "AtomicCounter",
	// ...), matching the dego type of the same name.
	Rep string
	// Adaptive reports whether the representation switches itself under
	// measured contention.
	Adaptive bool
	// Ranges is the hash-prefix range count of an adaptive hash-keyed
	// directory (1 = wholesale).
	Ranges int
	// Fences is the fence count of an adaptive ordered directory
	// (0 = single range).
	Fences int
}

// Declared renders the declared object like the paper's nodes: "(M2, CWMR)".
func (p Plan) Declared() string { return fmt.Sprintf("(%s, %s)", p.Variant, p.Mode) }

// String renders the whole decision, e.g. "Map (M2, CWMR) → SegmentedMap".
func (p Plan) String() string {
	s := fmt.Sprintf("%s %s → %s", p.Datatype, p.Declared(), p.Rep)
	if p.Adaptive {
		s += " (adaptive)"
	}
	return s
}

// validate cross-checks the plan against the executable catalog: the
// declared object must adjust its family's base per Definition 1
// (spec.Adjusts) before anything is constructed. The planner's own rules
// only propose objects that satisfy this, so a failure here is a planner
// bug surfacing — it is still reported as an invalid profile rather than
// silently building an uncertified object.
func (p Plan) validate() error {
	if err := spec.ValidateAdjustment(p.Variant, p.Mode); err != nil {
		return invalid(p.Datatype, "declared object %s is not a valid adjustment: %v", p.Declared(), err)
	}
	return nil
}
