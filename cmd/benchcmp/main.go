// Command benchcmp compares two dego-bench JSON artifacts (the -json output
// of cmd/dego-bench) and reports per-series throughput ratios against a
// noise band. It exists for the regression-tracked flat baseline: CI runs
// the flat figure at the smoke configuration and compares it against the
// checked-in BENCH_flat.json, so a representation regression shows up as a
// ratio outside the band instead of a silent drift.
//
// Usage:
//
//	benchcmp [-band 0.40] [-fail] old.json new.json
//
// The report prints one line per (figure, section, object, threads) series
// point: old and new Kops/s, the new/old ratio, and a verdict. Points whose
// ratio falls below 1-band are regressions; above 1+band, improvements.
// Shared-runner smoke numbers are noisy, so the default band is wide and
// the CI step that runs this is non-blocking; -fail turns regressions into
// a non-zero exit for local use on quiet machines.
//
// Only points present in both files are compared — a new figure or object
// in one file is listed as unmatched, never an error, so adding a workload
// does not break the comparison against an older baseline.
//
// benchcmp also compares open-loop frontier artifacts (the -json output of
// retwis-bench -openloop, a JSON array of frontier points). The file shape
// selects the mode: two arrays compare as frontiers, two objects as
// dego-bench artifacts, one of each is an error. Frontier cells are keyed
// by (store, shards, pipeline, workers, process, faulted, target rate) and
// judged on two metrics per cell: achieved rate (a regression when the
// ratio falls below 1-band) and p99 latency (a regression when the ratio
// rises above 1+band). Latency at a saturated cell measures queueing, not
// the server, so p99 is only judged when both runs stayed unsaturated.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/adjusted-objects/dego/internal/bench"
	"github.com/adjusted-objects/dego/internal/retwis"
)

// artifact mirrors cmd/dego-bench's writeJSON payload.
type artifact struct {
	BaseConfig bench.Config
	Note       string
	Threads    []int
	Figures    map[string]map[string]map[string][]bench.Result
}

// point is one comparable series point, keyed by everything except the
// measurement itself.
type point struct {
	Figure, Section, Object string
	Threads                 int
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	band := fs.Float64("band", 0.40, "noise band: ratios in [1-band, 1+band] count as unchanged")
	fail := fs.Bool("fail", false, "exit non-zero when any point regresses below 1-band")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want two arguments: old.json new.json (got %d)", fs.NArg())
	}
	oldBlob, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newBlob, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	if isArray(oldBlob) != isArray(newBlob) {
		return fmt.Errorf("%s and %s are different artifact kinds (one frontier array, one dego-bench object)",
			fs.Arg(0), fs.Arg(1))
	}
	if isArray(oldBlob) {
		return runFrontier(w, *band, *fail, fs.Arg(0), oldBlob, fs.Arg(1), newBlob)
	}

	oldArt, err := load(fs.Arg(0), oldBlob)
	if err != nil {
		return err
	}
	newArt, err := load(fs.Arg(1), newBlob)
	if err != nil {
		return err
	}

	oldPts := flatten(oldArt)
	newPts := flatten(newArt)

	keys := make([]point, 0, len(oldPts))
	for k := range oldPts {
		if _, ok := newPts[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Figure != b.Figure {
			return a.Figure < b.Figure
		}
		if a.Section != b.Section {
			return a.Section < b.Section
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Threads < b.Threads
	})

	if oldArt.BaseConfig.InitialItems != newArt.BaseConfig.InitialItems ||
		oldArt.BaseConfig.KeyRange != newArt.BaseConfig.KeyRange {
		fmt.Fprintf(w, "note: base configs differ (old %d/%d items/range, new %d/%d) — ratios compare different workloads\n\n",
			oldArt.BaseConfig.InitialItems, oldArt.BaseConfig.KeyRange,
			newArt.BaseConfig.InitialItems, newArt.BaseConfig.KeyRange)
	}

	regressions := 0
	fmt.Fprintf(w, "%-10s %-24s %-28s %7s %10s %10s %7s  %s\n",
		"figure", "section", "object", "threads", "old Kops", "new Kops", "ratio", "verdict")
	for _, k := range keys {
		o, n := oldPts[k].Kops(), newPts[k].Kops()
		ratio := 0.0
		if o > 0 {
			ratio = n / o
		}
		verdict := "ok"
		switch {
		case o == 0 || n == 0:
			verdict = "no-data"
		case ratio < 1-*band:
			verdict = "REGRESSION"
			regressions++
		case ratio > 1+*band:
			verdict = "improved"
		}
		fmt.Fprintf(w, "%-10s %-24s %-28s %7d %10.1f %10.1f %6.2fx  %s\n",
			k.Figure, k.Section, k.Object, k.Threads, o, n, ratio, verdict)
	}
	fmt.Fprintf(w, "\n%d points compared (band ±%.0f%%), %d regression(s)",
		len(keys), *band*100, regressions)
	if un := unmatched(oldPts, newPts); un > 0 {
		fmt.Fprintf(w, ", %d point(s) only in one file", un)
	}
	fmt.Fprintln(w)

	if *fail && regressions > 0 {
		return fmt.Errorf("%d point(s) regressed below %.2fx", regressions, 1-*band)
	}
	return nil
}

func load(path string, blob []byte) (*artifact, error) {
	var a artifact
	if err := json.Unmarshal(blob, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &a, nil
}

// isArray reports whether a JSON document's top level is an array — the
// shape that distinguishes a frontier artifact from a dego-bench one.
func isArray(blob []byte) bool {
	trimmed := bytes.TrimLeft(blob, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '['
}

// fpoint is one comparable frontier cell, keyed by everything that
// identifies the experiment except the measurements.
type fpoint struct {
	Store            string
	Shards, Pipeline int
	Workers          int
	Process          string
	Faulted          bool
	TargetRate       float64
}

func flattenFrontier(pts []retwis.FrontierPoint) map[fpoint]retwis.FrontierPoint {
	out := map[fpoint]retwis.FrontierPoint{}
	for _, p := range pts {
		k := fpoint{p.Store, p.Shards, p.Pipeline, p.Workers, p.Process, p.Faulted, p.TargetRate}
		if prev, ok := out[k]; !ok || p.ElapsedMS > prev.ElapsedMS {
			out[k] = p
		}
	}
	return out
}

// runFrontier compares two open-loop frontier artifacts cell by cell. A
// cell regresses when achieved rate drops below 1-band of the baseline, or
// — when both runs absorbed the offered rate — when p99 rises above 1+band.
func runFrontier(w io.Writer, band float64, fail bool, oldPath string, oldBlob []byte, newPath string, newBlob []byte) error {
	var oldRaw, newRaw []retwis.FrontierPoint
	if err := json.Unmarshal(oldBlob, &oldRaw); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	if err := json.Unmarshal(newBlob, &newRaw); err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	oldPts, newPts := flattenFrontier(oldRaw), flattenFrontier(newRaw)

	keys := make([]fpoint, 0, len(oldPts))
	for k := range oldPts {
		if _, ok := newPts[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Store != b.Store {
			return a.Store < b.Store
		}
		if a.Faulted != b.Faulted {
			return !a.Faulted
		}
		if a.Shards != b.Shards {
			return a.Shards < b.Shards
		}
		if a.Pipeline != b.Pipeline {
			return a.Pipeline < b.Pipeline
		}
		return a.TargetRate < b.TargetRate
	})

	regressions := 0
	fmt.Fprintf(w, "%-10s %6s %5s %8s %10s %10s %7s %9s %9s %7s  %s\n",
		"store", "shards", "pipe", "target/s", "old ach/s", "new ach/s", "rate", "old p99", "new p99", "p99", "verdict")
	for _, k := range keys {
		o, n := oldPts[k], newPts[k]
		rateRatio, p99Ratio := 0.0, 0.0
		if o.AchievedRate > 0 {
			rateRatio = n.AchievedRate / o.AchievedRate
		}
		if o.P99us > 0 {
			p99Ratio = float64(n.P99us) / float64(o.P99us)
		}
		judgeLatency := !o.Saturated && !n.Saturated && o.P99us > 0 && n.P99us > 0
		verdict := "ok"
		switch {
		case o.AchievedRate == 0 || n.AchievedRate == 0:
			verdict = "no-data"
		case rateRatio < 1-band:
			verdict = "REGRESSION(rate)"
			regressions++
		case judgeLatency && p99Ratio > 1+band:
			verdict = "REGRESSION(p99)"
			regressions++
		case rateRatio > 1+band || (judgeLatency && p99Ratio < 1-band):
			verdict = "improved"
		case !judgeLatency:
			verdict = "ok(rate-only)"
		}
		fmt.Fprintf(w, "%-10s %6d %5d %8.0f %10.0f %10.0f %6.2fx %8dµs %8dµs %6.2fx  %s\n",
			k.Store, k.Shards, k.Pipeline, k.TargetRate,
			o.AchievedRate, n.AchievedRate, rateRatio, o.P99us, n.P99us, p99Ratio, verdict)
	}
	fmt.Fprintf(w, "\n%d frontier cell(s) compared (band ±%.0f%%), %d regression(s)",
		len(keys), band*100, regressions)
	un := 0
	for k := range oldPts {
		if _, ok := newPts[k]; !ok {
			un++
		}
	}
	for k := range newPts {
		if _, ok := oldPts[k]; !ok {
			un++
		}
	}
	if un > 0 {
		fmt.Fprintf(w, ", %d cell(s) only in one file", un)
	}
	fmt.Fprintln(w)

	if fail && regressions > 0 {
		return fmt.Errorf("%d frontier cell(s) regressed beyond the ±%.0f%% band", regressions, band*100)
	}
	return nil
}

// flatten indexes every series point of an artifact by its identity. A
// duplicate thread count within one series keeps the longer-running point
// (more samples, less noise); dego-bench never emits duplicates, so this is
// pure defense against hand-edited baselines.
func flatten(a *artifact) map[point]bench.Result {
	out := map[point]bench.Result{}
	for fig, sections := range a.Figures {
		for section, series := range sections {
			for object, results := range series {
				for _, r := range results {
					k := point{fig, section, object, r.Threads}
					if prev, ok := out[k]; !ok || r.Elapsed > prev.Elapsed {
						out[k] = r
					}
				}
			}
		}
	}
	return out
}

// unmatched counts points present in exactly one artifact.
func unmatched(a, b map[point]bench.Result) int {
	n := 0
	for k := range a {
		if _, ok := b[k]; !ok {
			n++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			n++
		}
	}
	return n
}
