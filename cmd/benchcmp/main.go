// Command benchcmp compares two dego-bench JSON artifacts (the -json output
// of cmd/dego-bench) and reports per-series throughput ratios against a
// noise band. It exists for the regression-tracked flat baseline: CI runs
// the flat figure at the smoke configuration and compares it against the
// checked-in BENCH_flat.json, so a representation regression shows up as a
// ratio outside the band instead of a silent drift.
//
// Usage:
//
//	benchcmp [-band 0.40] [-fail] old.json new.json
//
// The report prints one line per (figure, section, object, threads) series
// point: old and new Kops/s, the new/old ratio, and a verdict. Points whose
// ratio falls below 1-band are regressions; above 1+band, improvements.
// Shared-runner smoke numbers are noisy, so the default band is wide and
// the CI step that runs this is non-blocking; -fail turns regressions into
// a non-zero exit for local use on quiet machines.
//
// Only points present in both files are compared — a new figure or object
// in one file is listed as unmatched, never an error, so adding a workload
// does not break the comparison against an older baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/adjusted-objects/dego/internal/bench"
)

// artifact mirrors cmd/dego-bench's writeJSON payload.
type artifact struct {
	BaseConfig bench.Config
	Note       string
	Threads    []int
	Figures    map[string]map[string]map[string][]bench.Result
}

// point is one comparable series point, keyed by everything except the
// measurement itself.
type point struct {
	Figure, Section, Object string
	Threads                 int
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	band := fs.Float64("band", 0.40, "noise band: ratios in [1-band, 1+band] count as unchanged")
	fail := fs.Bool("fail", false, "exit non-zero when any point regresses below 1-band")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want two arguments: old.json new.json (got %d)", fs.NArg())
	}
	oldArt, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	newArt, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	oldPts := flatten(oldArt)
	newPts := flatten(newArt)

	keys := make([]point, 0, len(oldPts))
	for k := range oldPts {
		if _, ok := newPts[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Figure != b.Figure {
			return a.Figure < b.Figure
		}
		if a.Section != b.Section {
			return a.Section < b.Section
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Threads < b.Threads
	})

	if oldArt.BaseConfig.InitialItems != newArt.BaseConfig.InitialItems ||
		oldArt.BaseConfig.KeyRange != newArt.BaseConfig.KeyRange {
		fmt.Fprintf(w, "note: base configs differ (old %d/%d items/range, new %d/%d) — ratios compare different workloads\n\n",
			oldArt.BaseConfig.InitialItems, oldArt.BaseConfig.KeyRange,
			newArt.BaseConfig.InitialItems, newArt.BaseConfig.KeyRange)
	}

	regressions := 0
	fmt.Fprintf(w, "%-10s %-24s %-28s %7s %10s %10s %7s  %s\n",
		"figure", "section", "object", "threads", "old Kops", "new Kops", "ratio", "verdict")
	for _, k := range keys {
		o, n := oldPts[k].Kops(), newPts[k].Kops()
		ratio := 0.0
		if o > 0 {
			ratio = n / o
		}
		verdict := "ok"
		switch {
		case o == 0 || n == 0:
			verdict = "no-data"
		case ratio < 1-*band:
			verdict = "REGRESSION"
			regressions++
		case ratio > 1+*band:
			verdict = "improved"
		}
		fmt.Fprintf(w, "%-10s %-24s %-28s %7d %10.1f %10.1f %6.2fx  %s\n",
			k.Figure, k.Section, k.Object, k.Threads, o, n, ratio, verdict)
	}
	fmt.Fprintf(w, "\n%d points compared (band ±%.0f%%), %d regression(s)",
		len(keys), *band*100, regressions)
	if un := unmatched(oldPts, newPts); un > 0 {
		fmt.Fprintf(w, ", %d point(s) only in one file", un)
	}
	fmt.Fprintln(w)

	if *fail && regressions > 0 {
		return fmt.Errorf("%d point(s) regressed below %.2fx", regressions, 1-*band)
	}
	return nil
}

func load(path string) (*artifact, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artifact
	if err := json.Unmarshal(blob, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &a, nil
}

// flatten indexes every series point of an artifact by its identity. A
// duplicate thread count within one series keeps the longer-running point
// (more samples, less noise); dego-bench never emits duplicates, so this is
// pure defense against hand-edited baselines.
func flatten(a *artifact) map[point]bench.Result {
	out := map[point]bench.Result{}
	for fig, sections := range a.Figures {
		for section, series := range sections {
			for object, results := range series {
				for _, r := range results {
					k := point{fig, section, object, r.Threads}
					if prev, ok := out[k]; !ok || r.Elapsed > prev.Elapsed {
						out[k] = r
					}
				}
			}
		}
	}
	return out
}

// unmatched counts points present in exactly one artifact.
func unmatched(a, b map[point]bench.Result) int {
	n := 0
	for k := range a {
		if _, ok := b[k]; !ok {
			n++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			n++
		}
	}
	return n
}
