package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/adjusted-objects/dego/internal/bench"
)

// writeArtifact persists a minimal dego-bench JSON with one flat series
// whose single point runs at kops Kops/s.
func writeArtifact(t *testing.T, dir, name string, kops float64) string {
	t.Helper()
	r := bench.Result{
		Name:    "FlatShardedMap",
		Threads: 1,
		Ops:     int64(kops * 1e3), // over one second
		Elapsed: time.Second,
	}
	a := artifact{
		BaseConfig: bench.Config{InitialItems: 1024, KeyRange: 2048},
		Threads:    []int{1},
		Figures: map[string]map[string]map[string][]bench.Result{
			"flat": {"1024 initial items": {"FlatShardedMap": {r}}},
		},
	}
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinBand(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", 1000)
	cur := writeArtifact(t, dir, "new.json", 900) // -10%: inside ±40%
	var out strings.Builder
	if err := run([]string{"-fail", old, cur}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") {
		t.Fatalf("output missing clean verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0.90x") {
		t.Fatalf("output missing ratio:\n%s", out.String())
	}
}

func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", 1000)
	cur := writeArtifact(t, dir, "new.json", 100) // -90%: outside any band
	var out strings.Builder
	if err := run([]string{"-fail", old, cur}, &out); err == nil {
		t.Fatalf("run accepted a 0.10x regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("output missing REGRESSION verdict:\n%s", out.String())
	}
	// Without -fail the same comparison reports but succeeds (the CI step
	// is non-blocking).
	var quiet strings.Builder
	if err := run([]string{old, cur}, &quiet); err != nil {
		t.Fatalf("non-fail mode errored: %v", err)
	}
}

func TestCompareUnmatchedPoints(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", 1000)
	cur := filepath.Join(dir, "renamed.json")
	blob, err := os.ReadFile(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur,
		[]byte(strings.ReplaceAll(string(blob), "FlatShardedMap", "RenamedMap")), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-fail", old, cur}, &out); err != nil {
		t.Fatalf("unmatched-only comparison must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "only in one file") {
		t.Fatalf("output missing unmatched note:\n%s", out.String())
	}
}
