package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/adjusted-objects/dego/internal/bench"
	"github.com/adjusted-objects/dego/internal/retwis"
)

// writeFrontier persists a one-cell open-loop frontier artifact.
func writeFrontier(t *testing.T, dir, name string, achieved float64, p99 uint64, saturated bool) string {
	t.Helper()
	pts := []retwis.FrontierPoint{{
		Store: "adaptive", Shards: 4, Pipeline: 8, Workers: 2, Process: "inproc",
		TargetRate: 2000, AchievedRate: achieved, ElapsedMS: 300,
		P99us: p99, Saturated: saturated,
	}}
	blob, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFrontierCompareWithinBand(t *testing.T) {
	dir := t.TempDir()
	old := writeFrontier(t, dir, "old.json", 2000, 500, false)
	cur := writeFrontier(t, dir, "new.json", 1800, 600, false) // -10% rate, +20% p99
	var out strings.Builder
	if err := run([]string{"-fail", old, cur}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") ||
		!strings.Contains(out.String(), "frontier cell(s) compared") {
		t.Fatalf("output missing clean frontier verdict:\n%s", out.String())
	}
}

func TestFrontierRateRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeFrontier(t, dir, "old.json", 2000, 500, false)
	cur := writeFrontier(t, dir, "new.json", 400, 500, true) // collapsed throughput
	var out strings.Builder
	if err := run([]string{"-fail", old, cur}, &out); err == nil {
		t.Fatalf("run accepted a collapsed achieved rate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION(rate)") {
		t.Fatalf("output missing rate regression verdict:\n%s", out.String())
	}
	// Non-blocking without -fail, mirroring the CI step.
	if err := run([]string{old, cur}, &strings.Builder{}); err != nil {
		t.Fatalf("non-fail mode errored: %v", err)
	}
}

func TestFrontierLatencyRegressionNeedsBothUnsaturated(t *testing.T) {
	dir := t.TempDir()
	old := writeFrontier(t, dir, "old.json", 2000, 500, false)
	slow := writeFrontier(t, dir, "slow.json", 2000, 5000, false) // 10x p99, same rate
	var out strings.Builder
	if err := run([]string{"-fail", old, slow}, &out); err == nil {
		t.Fatalf("run accepted a 10x p99 blowup:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION(p99)") {
		t.Fatalf("output missing p99 regression verdict:\n%s", out.String())
	}

	// The same p99 blowup at a saturated cell measures queueing, not the
	// server: judged on rate alone.
	oldSat := writeFrontier(t, dir, "oldsat.json", 2000, 500, true)
	slowSat := writeFrontier(t, dir, "slowsat.json", 2000, 5000, true)
	var satOut strings.Builder
	if err := run([]string{"-fail", oldSat, slowSat}, &satOut); err != nil {
		t.Fatalf("saturated p99 must not fail: %v\n%s", err, satOut.String())
	}
	if !strings.Contains(satOut.String(), "ok(rate-only)") {
		t.Fatalf("output missing rate-only verdict:\n%s", satOut.String())
	}
}

func TestMixedArtifactKindsRejected(t *testing.T) {
	dir := t.TempDir()
	benchFile := writeArtifact(t, dir, "bench.json", 1000)
	frontierFile := writeFrontier(t, dir, "frontier.json", 2000, 500, false)
	if err := run([]string{benchFile, frontierFile}, &strings.Builder{}); err == nil {
		t.Fatal("run accepted a bench artifact against a frontier artifact")
	}
}

// writeArtifact persists a minimal dego-bench JSON with one flat series
// whose single point runs at kops Kops/s.
func writeArtifact(t *testing.T, dir, name string, kops float64) string {
	t.Helper()
	r := bench.Result{
		Name:    "FlatShardedMap",
		Threads: 1,
		Ops:     int64(kops * 1e3), // over one second
		Elapsed: time.Second,
	}
	a := artifact{
		BaseConfig: bench.Config{InitialItems: 1024, KeyRange: 2048},
		Threads:    []int{1},
		Figures: map[string]map[string]map[string][]bench.Result{
			"flat": {"1024 initial items": {"FlatShardedMap": {r}}},
		},
	}
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinBand(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", 1000)
	cur := writeArtifact(t, dir, "new.json", 900) // -10%: inside ±40%
	var out strings.Builder
	if err := run([]string{"-fail", old, cur}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") {
		t.Fatalf("output missing clean verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0.90x") {
		t.Fatalf("output missing ratio:\n%s", out.String())
	}
}

func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", 1000)
	cur := writeArtifact(t, dir, "new.json", 100) // -90%: outside any band
	var out strings.Builder
	if err := run([]string{"-fail", old, cur}, &out); err == nil {
		t.Fatalf("run accepted a 0.10x regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("output missing REGRESSION verdict:\n%s", out.String())
	}
	// Without -fail the same comparison reports but succeeds (the CI step
	// is non-blocking).
	var quiet strings.Builder
	if err := run([]string{old, cur}, &quiet); err != nil {
		t.Fatalf("non-fail mode errored: %v", err)
	}
}

func TestCompareUnmatchedPoints(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", 1000)
	cur := filepath.Join(dir, "renamed.json")
	blob, err := os.ReadFile(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur,
		[]byte(strings.ReplaceAll(string(blob), "FlatShardedMap", "RenamedMap")), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-fail", old, cur}, &out); err != nil {
		t.Fatalf("unmatched-only comparison must not fail: %v", err)
	}
	if !strings.Contains(out.String(), "only in one file") {
		t.Fatalf("output missing unmatched note:\n%s", out.String())
	}
}
