package main

import "testing"

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "9"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestDirListFlag(t *testing.T) {
	var d dirList
	if err := d.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("b"); err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || d.String() == "" {
		t.Fatalf("dirList = %v", d)
	}
}
