// Command miner regenerates the usage-mining study of §6.1 (Figures 1, 4
// and 5) over Go corpora. Each -dir argument is one "project"; with no -dir,
// it mines the current directory. The Go standard library's source tree
// (GOROOT/src) makes a good large corpus:
//
//	miner -fig all -dir $(go env GOROOT)/src/net/http -dir .
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/adjusted-objects/dego/internal/miner"
)

type dirList []string

func (d *dirList) String() string     { return fmt.Sprint(*d) }
func (d *dirList) Set(s string) error { *d = append(*d, s); return nil }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "miner:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("miner", flag.ContinueOnError)
	var dirs dirList
	fs.Var(&dirs, "dir", "project directory to mine (repeatable)")
	fig := fs.String("fig", "all", "figure to regenerate: 1, 4, 5 or all")
	trend := fs.Bool("trend", false, "treat each -dir as a chronological snapshot for the Figure 4 time axis")
	threshold := fs.Float64("threshold", 10, "percentage below which methods group as 'others' (figure 5)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(dirs) == 0 {
		dirs = dirList{"."}
	}

	var projects []*miner.ProjectStats
	for _, dir := range dirs {
		name := filepath.Base(dir)
		if abs, err := filepath.Abs(dir); err == nil {
			name = filepath.Base(abs)
		}
		stats, err := miner.MineDir(dir, name)
		if err != nil {
			return err
		}
		projects = append(projects, stats)
	}

	if *trend {
		labels := make([]string, len(projects))
		snapshots := make([][]*miner.ProjectStats, len(projects))
		for i, p := range projects {
			labels[i] = p.Name
			snapshots[i] = []*miner.ProjectStats{p}
		}
		return miner.Figure4Trend(os.Stdout, labels, snapshots)
	}

	switch *fig {
	case "1":
		for _, p := range projects {
			miner.Figure1(os.Stdout, p)
		}
	case "4":
		miner.Figure4(os.Stdout, projects)
	case "5":
		miner.Figure5(os.Stdout, projects, *threshold)
	case "all":
		for _, p := range projects {
			miner.Figure1(os.Stdout, p)
		}
		miner.Figure4(os.Stdout, projects)
		miner.Figure5(os.Stdout, projects, *threshold)
	default:
		return fmt.Errorf("unknown figure %q (want 1, 4, 5 or all)", *fig)
	}
	return nil
}
