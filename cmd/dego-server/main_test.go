package main

import (
	"os"
	"testing"
)

// TestSmokeMode runs the CI self-session in-process: boot on an ephemeral
// port, pipeline the scripted GET/SET/INCR/LRANGE session through the wire
// client, verify every reply.
func TestSmokeMode(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run([]string{"-smoke", "-shards", "2", "-store", "adaptive"}, null); err != nil {
		t.Fatal(err)
	}
	// Every store kind must answer the same session identically.
	for _, kind := range []string{"segmented", "striped"} {
		if err := run([]string{"-smoke", "-store", kind}, null); err != nil {
			t.Fatalf("store %s: %v", kind, err)
		}
	}
}

func TestBadFlags(t *testing.T) {
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	if err := run([]string{"-smoke", "-store", "bogus"}, null); err == nil {
		t.Fatal("bogus store kind should fail")
	}
}
