// Command dego-server serves the RESP subset of docs/PROTOCOL.md over TCP,
// backed by the sharded, profile-planned adaptive store of internal/server.
// Stock redis clients can talk to it:
//
//	dego-server -addr :6399 &
//	redis-cli -p 6399 SET greeting hello
//	redis-cli -p 6399 GET greeting
//
// Flags:
//
//	-addr      listen address (default 127.0.0.1:6399; :0 picks a free port)
//	-shards    event-loop shards, each owning a keyspace slice (default GOMAXPROCS)
//	-store     shard map kind: adaptive, segmented, striped or flat
//	-capacity  per-shard capacity hint for the planner
//	-ranges    adaptive ranges per shard map
//	-record    attach usage recorders to the shard maps, enabling the
//	           DEBUG ADVISE tuning-advisor verb (a profiling mode)
//	-pipeline  max commands executed per pipeline batch
//	-maxconns  cap on concurrent connections; one over the cap is answered
//	           "-ERR max clients reached" and closed (0 = unlimited)
//	-timeout   per-connection idle/read/write deadline (0 = none)
//	-drain     graceful-shutdown budget on SIGINT/SIGTERM: in-flight pipeline
//	           batches finish and flush within this window (0 = hard close)
//	-smoke     bind an ephemeral port, run a scripted self-session, exit
//
// -smoke exists for CI: the container images have no redis-cli, so the
// server proves the wire path with its own client — boot, connect over
// TCP, run a GET/SET/INCR/LRANGE session, verify every reply, shut down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/adjusted-objects/dego/internal/retwis"
	"github.com/adjusted-objects/dego/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dego-server:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("dego-server", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:6399", "TCP listen address")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0), "keyspace shards (event loops)")
	store := fs.String("store", server.StoreAdaptive,
		"shard map kind: "+strings.Join(server.StoreKinds(), ", "))
	capacity := fs.Int("capacity", 0, "per-shard capacity hint (0 = default)")
	ranges := fs.Int("ranges", 0, "adaptive ranges per shard (0 = default)")
	record := fs.Bool("record", false, "attach usage recorders to the shard maps (DEBUG ADVISE)")
	pipeline := fs.Int("pipeline", 0, "max commands per pipeline batch (0 = default)")
	maxconns := fs.Int("maxconns", 0, "max concurrent connections (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "per-connection idle/read/write deadline (0 = none)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain budget (0 = hard close)")
	smoke := fs.Bool("smoke", false, "self-test: ephemeral port, scripted session, exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.Config{
		Addr: *addr,
		Store: server.StoreConfig{
			Shards:   *shards,
			Kind:     *store,
			Capacity: *capacity,
			Ranges:   *ranges,
			Record:   *record,
		},
		MaxPipeline:  *pipeline,
		MaxConns:     *maxconns,
		IdleTimeout:  *timeout,
		ReadTimeout:  *timeout,
		WriteTimeout: *timeout,
	}
	if *smoke {
		cfg.Addr = "127.0.0.1:0"
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Listen(); err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(out, "dego-server: listening on %s (%d shards, %s store)\n",
		srv.Addr(), srv.Store().Shards(), *store)

	if *smoke {
		defer srv.Close()
		go srv.Serve()
		return smokeSession(srv.Addr().String(), out)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if *drain > 0 {
			fmt.Fprintf(out, "dego-server: draining (up to %v)\n", *drain)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(out, "dego-server:", err)
			}
			return
		}
		fmt.Fprintln(out, "dego-server: shutting down")
		srv.Close()
	}()
	if err := srv.Serve(); err != nil && !errors.Is(err, server.ErrServerClosed) {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(out, "dego-server: closed (%d conns served, %d rejected, %d timeouts, %d panics recovered)\n",
		st.Accepted, st.Rejected, st.IdleTimeouts, st.Panics)
	return nil
}

// smokeSession drives the scripted self-session: one pipelined connection
// exercising every verb family, each reply checked against its expectation.
func smokeSession(addr string, out *os.File) error {
	kv, err := retwis.DialKV(addr)
	if err != nil {
		return err
	}
	defer kv.Close()

	session := []struct {
		cmd  []string
		want string // redis-cli-style rendering of the expected reply
	}{
		{[]string{"PING"}, "PONG"},
		{[]string{"SET", "greeting", "hello"}, "OK"},
		{[]string{"GET", "greeting"}, `"hello"`},
		{[]string{"INCR", "visits"}, "(integer) 1"},
		{[]string{"INCR", "visits"}, "(integer) 2"},
		{[]string{"EXISTS", "greeting", "visits", "nope"}, "(integer) 2"},
		{[]string{"SADD", "community", "1", "2", "3"}, "(integer) 3"},
		{[]string{"SMEMBERS", "community"}, `["1" "2" "3"]`},
		{[]string{"LPUSH", "timeline:1", "b", "a"}, "(integer) 2"},
		{[]string{"LRANGE", "timeline:1", "0", "-1"}, `["a" "b"]`},
		{[]string{"ZADD", "posts:1", "1", "first", "2", "second"}, "(integer) 2"},
		{[]string{"ZRANGEBYSCORE", "posts:1", "-inf", "+inf"}, `["first" "second"]`},
		{[]string{"DEL", "greeting"}, "(integer) 1"},
		{[]string{"GET", "greeting"}, "(nil)"},
	}

	cmds := make([][][]byte, len(session))
	for i, s := range session {
		args := make([][]byte, len(s.cmd))
		for j, a := range s.cmd {
			args[j] = []byte(a)
		}
		cmds[i] = args
	}
	reps, err := kv.ExecPipe(cmds)
	if err != nil {
		return err
	}
	for i, s := range session {
		if got := reps[i].String(); got != s.want {
			return fmt.Errorf("smoke: %v replied %s, want %s", s.cmd, got, s.want)
		}
		fmt.Fprintf(out, "smoke: %v -> %s\n", s.cmd, reps[i])
	}
	fmt.Fprintf(out, "smoke: %d/%d replies ok\n", len(session), len(session))
	return nil
}
