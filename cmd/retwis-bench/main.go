// Command retwis-bench regenerates the social-network evaluation of §6.3:
// Figure 9 (speedup over JUC across user counts and thread counts, with the
// DAP upper bound) and Figure 10 (throughput across the user-access
// distribution parameter alpha). The operation mix is Table 2. Both figures
// also sweep the ADAPTIVE backend (contention-adaptive maps plus the
// adaptive sorted-map post log), which is not in the paper: it measures the
// runtime-adjustment engine end to end on the same workload.
//
// Usage:
//
//	retwis-bench -fig 9 [-users 100000,500000,1000000] [-threads 1,5,10,20,40,80]
//	retwis-bench -fig 10 [-alphas 0,0.25,0.5,0.75,1,2]
//	retwis-bench -fig all
//
// -net switches to the networked evaluation: the same Table-2 workload is
// generated client-side and shipped to a dego-server as RESP pipelines,
// producing latency-vs-throughput points (p50/p95/p99 of the pipeline round
// trip). By default it self-hosts one server per store kind in -stores; with
// -addr it targets a live server instead. -json writes the points as a JSON
// array (the CI artifact):
//
//	retwis-bench -net [-stores adaptive,striped] [-conns 4] [-pipeline 8]
//	             [-netusers 10000] [-netduration 2s] [-json net.json]
//	retwis-bench -net -addr 127.0.0.1:6399
//
// -openloop switches to the open-loop frontier: arrivals are scheduled on a
// Poisson (or fixed-interval) process at each target rate in -rates, and
// latency is measured from *intended* start, so queueing delay behind a
// stalled server is recorded instead of coordinated away (see README,
// "Measuring latency"). The sweep walks rates per (store kind × shard
// count × pipeline depth) cell until saturation and emits a frontier JSON;
// -chaos runs the same sweep through a fault-injecting dialer for the
// latency-under-chaos curve:
//
//	retwis-bench -openloop [-stores adaptive,striped] [-shardcounts 2]
//	             [-pipelines 8] [-rates 2k,4k,8k] [-olduration 1s]
//	             [-olworkers 4] [-arrivals poisson] [-json frontier.json]
//	retwis-bench -openloop -chaos [-chaosseed 42]
//
// -advise switches to the tuning-advisor replay: the same Table-2 workload
// runs against a backend whose shared objects are built with NO adjustment
// declared but with usage recorders attached, and the advisor reports the
// declarations the observed traffic would have certified — rediscovering
// the commuting-writers maps, single-consumer timelines, and write-once
// metadata the hand-tuned backends declare. -json writes the per-table
// advice as a JSON array (rendered by dego-advise):
//
//	retwis-bench -advise [-advusers 2000] [-advthreads 4] [-advops 2000]
//	             [-json advise.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/adjusted-objects/dego/internal/faultnet"
	"github.com/adjusted-objects/dego/internal/loadgen"
	"github.com/adjusted-objects/dego/internal/retwis"
	"github.com/adjusted-objects/dego/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "retwis-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("retwis-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 9, 10 or all")
	usersFlag := fs.String("users", "100000,500000,1000000", "user counts for figure 9")
	threadsFlag := fs.String("threads", "1,5,10,20,40,80", "thread counts")
	alphasFlag := fs.String("alphas", "0,0.25,0.5,0.75,1,2", "alpha sweep for figure 10")
	users10 := fs.Int("users10", 100000, "user count for figure 10")
	threads10 := fs.Int("threads10", 0, "thread count for figure 10 (default: max of -threads)")
	duration := fs.Duration("duration", 500*time.Millisecond, "measured duration per point")
	alpha := fs.Float64("alpha", 1, "user-selection bias for figure 9")

	netMode := fs.Bool("net", false, "networked mode: drive dego-server over TCP instead of the figures")
	netAddr := fs.String("addr", "", "live server address for -net ('' self-hosts per store kind)")
	storesFlag := fs.String("stores", "adaptive,striped",
		"store kinds for self-hosted -net (any of: "+strings.Join(server.StoreKinds(), ", ")+")")
	conns := fs.Int("conns", 4, "client connections for -net")
	pipelineDepth := fs.Int("pipeline", 8, "ops batched per pipeline flush for -net")
	netUsers := fs.Int("netusers", 10_000, "seeded users for -net")
	netDuration := fs.Duration("netduration", 2*time.Second, "measured duration per -net point")
	netOps := fs.Int("netops", 0, "ops per connection for -net (0 = duration mode)")
	jsonPath := fs.String("json", "", "write -net / -openloop points as a JSON array to this file")

	openLoop := fs.Bool("openloop", false, "open-loop mode: arrival-rate-driven latency frontier (coordinated-omission-free)")
	ratesFlag := fs.String("rates", "2k,4k,8k", "arrival rates walked per frontier cell (ops/sec, k/m suffixes)")
	shardsOL := fs.String("shardcounts", "2", "server shard counts swept by -openloop")
	pipesOL := fs.String("pipelines", "8", "pipeline depths swept by -openloop")
	olDuration := fs.Duration("olduration", time.Second, "schedule horizon per frontier point")
	olWorkers := fs.Int("olworkers", 4, "worker connections per frontier point")
	olQueue := fs.Int("olqueue", 1024, "bounded backlog between the arrival clock and the workers")
	arrivals := fs.String("arrivals", "poisson", "arrival process for -openloop: poisson or uniform")
	chaosMode := fs.Bool("chaos", false, "run the -openloop sweep through a fault-injecting dialer")
	chaosSeed := fs.Int64("chaosseed", 42, "fault schedule seed for -chaos")

	adviseMode := fs.Bool("advise", false, "advisor mode: replay the workload unadjusted-with-recorders and print recommended declarations")
	advUsers := fs.Int("advusers", 2000, "seeded users for -advise")
	advThreads := fs.Int("advthreads", 4, "worker threads for -advise")
	advOps := fs.Int("advops", 2000, "ops per thread for -advise")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *adviseMode {
		return runAdvise(*advUsers, *advThreads, *advOps, *alpha, *jsonPath)
	}
	if *openLoop {
		return runOpenLoop(openLoopArgs{
			addr: *netAddr, stores: *storesFlag, shardCounts: *shardsOL,
			pipelines: *pipesOL, rates: *ratesFlag, users: *netUsers,
			duration: *olDuration, workers: *olWorkers, queueCap: *olQueue,
			process: *arrivals, alpha: *alpha, chaos: *chaosMode,
			chaosSeed: *chaosSeed, jsonPath: *jsonPath,
		})
	}
	if *netMode {
		return runNet(*netAddr, *storesFlag, *conns, *pipelineDepth, *netUsers,
			*netDuration, *netOps, *alpha, *jsonPath)
	}

	users, err := parseInts(*usersFlag)
	if err != nil {
		return fmt.Errorf("bad -users: %w", err)
	}
	threads, err := parseInts(*threadsFlag)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	alphas, err := parseFloats(*alphasFlag)
	if err != nil {
		return fmt.Errorf("bad -alphas: %w", err)
	}

	base := retwis.DefaultParams()
	base.Duration = *duration
	base.Alpha = *alpha

	fmt.Printf("Table 2 operation mix: %+v\n\n", retwis.DefaultMix())

	switch *fig {
	case "9":
		return retwis.Figure9(os.Stdout, base, users, threads)
	case "10":
		return runFigure10(base, alphas, *users10, *threads10, threads)
	case "all":
		if err := retwis.Figure9(os.Stdout, base, users, threads); err != nil {
			return err
		}
		return runFigure10(base, alphas, *users10, *threads10, threads)
	default:
		return fmt.Errorf("unknown figure %q (want 9, 10 or all)", *fig)
	}
}

// runAdvise replays the Table-2 workload against an unadjusted,
// recorder-instrumented backend and reports the declarations the tuning
// advisor would recommend — the profiles the hand-tuned backends declare,
// rediscovered from traffic. -json additionally writes the per-table
// advice as a JSON array (the CI artifact).
func runAdvise(users, threads, ops int, alpha float64, jsonPath string) error {
	p := retwis.DefaultParams()
	p.Users = users
	p.Threads = threads
	p.OpsPerThread = ops
	p.Alpha = alpha
	tables, err := retwis.AdviseRun(p)
	if err != nil {
		return err
	}
	retwis.WriteAdviceReport(os.Stdout, retwis.AdviseHeader(p), tables)
	if jsonPath != "" {
		return writeJSON(jsonPath, tables, len(tables))
	}
	return nil
}

// runNet measures latency-vs-throughput points: one per store kind when
// self-hosting, a single "remote" point when -addr targets a live server.
func runNet(addr, stores string, conns, pipeline, users int,
	duration time.Duration, opsPerConn int, alpha float64, jsonPath string) error {
	p := retwis.DefaultParams()
	p.Users = users
	p.Threads = conns
	p.Alpha = alpha
	p.Duration = duration
	p.OpsPerThread = opsPerConn
	base := retwis.NetParams{Workload: p, Addr: addr, Pipeline: pipeline}

	var points []retwis.NetPoint
	if addr != "" {
		pt, err := retwis.RunNet(base)
		if err != nil {
			return err
		}
		points = append(points, pt)
		fmt.Printf("remote %s: %.0f ops/s, p50 %dµs, p95 %dµs, p99 %dµs, errors %d, retries %d, reconnects %d\n",
			addr, pt.OpsPerSec, pt.P50us, pt.P95us, pt.P99us, pt.Errors, pt.Retries, pt.Reconnects)
	} else {
		kinds, err := parseStores(stores)
		if err != nil {
			return err
		}
		points, err = retwis.NetCurve(os.Stdout, base, kinds)
		if err != nil {
			return err
		}
	}
	return writeJSON(jsonPath, points, len(points))
}

// openLoopArgs carries the -openloop flag set.
type openLoopArgs struct {
	addr, stores, shardCounts, pipelines, rates string
	users                                       int
	duration                                    time.Duration
	workers, queueCap                           int
	process                                     string
	alpha                                       float64
	chaos                                       bool
	chaosSeed                                   int64
	jsonPath                                    string
}

// runOpenLoop sweeps the coordinated-omission-free latency frontier: per
// (store kind × shard count × pipeline depth) cell, arrival rates are
// walked until saturation. -chaos interposes a seeded fault injector on
// every worker dial, measuring the same frontier under a hostile network.
func runOpenLoop(a openLoopArgs) error {
	kinds, err := parseStores(a.stores)
	if err != nil {
		return err
	}
	shardCounts, err := parseInts(a.shardCounts)
	if err != nil {
		return fmt.Errorf("bad -shardcounts: %w", err)
	}
	pipelines, err := parseInts(a.pipelines)
	if err != nil {
		return fmt.Errorf("bad -pipelines: %w", err)
	}
	rates, err := parseRates(a.rates)
	if err != nil {
		return fmt.Errorf("bad -rates: %w", err)
	}
	process, err := loadgen.ParseProcess(a.process)
	if err != nil {
		return fmt.Errorf("bad -arrivals: %w", err)
	}

	p := retwis.DefaultParams()
	p.Users = a.users
	p.Alpha = a.alpha
	base := retwis.OpenLoopParams{
		Workload: p,
		Addr:     a.addr,
		Duration: a.duration,
		Process:  process,
		Workers:  a.workers,
		QueueCap: a.queueCap,
	}
	if a.chaos {
		// A moderate seeded storm on the client's transport: enough
		// latency, torn writes, stalls and the odd reset to bend the
		// frontier, while the op mix and schedule stay identical to the
		// clean sweep — the two JSONs differ only by the network.
		base.Fault = &faultnet.Config{
			Seed:             a.chaosSeed,
			LatencyProb:      0.05,
			LatencyMax:       2 * time.Millisecond,
			PartialWriteProb: 0.10,
			StallProb:        0.02,
			StallMax:         5 * time.Millisecond,
			ResetProb:        0.002,
		}
	}

	points, err := retwis.Frontier(os.Stdout, base, kinds, shardCounts, pipelines, rates)
	if err != nil {
		return err
	}
	return writeJSON(a.jsonPath, points, len(points))
}

// parseStores validates the -stores list up front through the server's own
// parser — the single source of truth — so a typo fails with the typed
// *server.UnknownStoreKindError before any server boots or socket dials.
// Empty entries (a stray comma) are rejected rather than silently
// resolving to the default kind.
func parseStores(s string) ([]string, error) {
	kinds := strings.Split(s, ",")
	for i := range kinds {
		kind := strings.TrimSpace(kinds[i])
		if kind == "" {
			return nil, fmt.Errorf("-stores: empty store kind in %q", s)
		}
		k, err := server.ParseStoreKind(kind)
		if err != nil {
			return nil, fmt.Errorf("-stores: %w", err)
		}
		kinds[i] = k
	}
	return kinds, nil
}

// writeJSON serializes points to path when set (the CI artifact).
func writeJSON(path string, points any, n int) error {
	if path == "" {
		return nil
	}
	blob, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d point(s) to %s\n", n, path)
	return nil
}

func runFigure10(base retwis.Params, alphas []float64, users, threads10 int, threads []int) error {
	p := base
	p.Users = users
	if threads10 > 0 {
		p.Threads = threads10
	} else {
		p.Threads = threads[len(threads)-1]
	}
	return retwis.Figure10(os.Stdout, p, alphas)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// parseRates parses a rate list with k/m suffixes: "2k,4k" → 2000, 4000;
// "1.5m" → 1_500_000; bare numbers pass through.
func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(strings.ToLower(p))
		mult := 1.0
		switch {
		case strings.HasSuffix(p, "k"):
			mult, p = 1e3, strings.TrimSuffix(p, "k")
		case strings.HasSuffix(p, "m"):
			mult, p = 1e6, strings.TrimSuffix(p, "m")
		}
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		if f*mult <= 0 {
			return nil, fmt.Errorf("rate %q is not positive", p)
		}
		out = append(out, f*mult)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
