package main

import (
	"errors"
	"testing"
	"time"

	"github.com/adjusted-objects/dego/internal/server"
)

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts("100,200")
	if err != nil || len(ints) != 2 || ints[1] != 200 {
		t.Fatalf("parseInts = %v, %v", ints, err)
	}
	if _, err := parseInts("x"); err == nil {
		t.Fatal("bad int accepted")
	}
	floats, err := parseFloats("0, 0.5 ,1")
	if err != nil || len(floats) != 3 || floats[1] != 0.5 {
		t.Fatalf("parseFloats = %v, %v", floats, err)
	}
	if _, err := parseFloats("y"); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "3"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestParseRates(t *testing.T) {
	rates, err := parseRates("2k, 4K ,0.5m,800")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2000, 4000, 500_000, 800}
	for i, r := range rates {
		if r != want[i] {
			t.Fatalf("parseRates[%d] = %v, want %v", i, r, want[i])
		}
	}
	for _, bad := range []string{"x", "1g", "0", "-2k", ""} {
		if _, err := parseRates(bad); err == nil {
			t.Fatalf("parseRates(%q) accepted", bad)
		}
	}
}

// Regression: an unknown store kind must surface the typed
// *server.UnknownStoreKindError and fail the run before any server boots
// or socket dials — on the -net path and the -openloop path alike. The
// time bound is the "before dialing anything" proof: validation fails in
// microseconds, a sweep would take seconds.
func TestUnknownStoreKindFailsTypedBeforeDialing(t *testing.T) {
	for _, args := range [][]string{
		{"-net", "-stores", "adaptive,bogus"},
		{"-openloop", "-stores", "bogus", "-rates", "1k"},
	} {
		start := time.Now()
		err := run(args)
		var uk *server.UnknownStoreKindError
		if !errors.As(err, &uk) {
			t.Fatalf("run(%v) = %v, want *server.UnknownStoreKindError", args, err)
		}
		if uk.Kind != "bogus" {
			t.Fatalf("run(%v): rejected kind %q, want %q", args, uk.Kind, "bogus")
		}
		if took := time.Since(start); took > time.Second {
			t.Fatalf("run(%v) took %v before failing: work happened before validation", args, took)
		}
	}
}

// Regression: a stray comma in -stores must error, not silently resolve
// the empty entry to the default store kind and measure the wrong thing.
func TestEmptyStoreKindRejected(t *testing.T) {
	for _, stores := range []string{"adaptive,", ",striped", "adaptive,,striped"} {
		if err := run([]string{"-net", "-stores", stores}); err == nil {
			t.Fatalf("-stores %q accepted", stores)
		}
	}
}
