package main

import "testing"

func TestParseHelpers(t *testing.T) {
	ints, err := parseInts("100,200")
	if err != nil || len(ints) != 2 || ints[1] != 200 {
		t.Fatalf("parseInts = %v, %v", ints, err)
	}
	if _, err := parseInts("x"); err == nil {
		t.Fatal("bad int accepted")
	}
	floats, err := parseFloats("0, 0.5 ,1")
	if err != nil || len(floats) != 3 || floats[1] != 0.5 {
		t.Fatalf("parseFloats = %v, %v", floats, err)
	}
	if _, err := parseFloats("y"); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "3"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
