// Command docscheck guards the repository's documentation against drift: it
// walks every Markdown file and verifies that each relative link resolves to
// a file or directory that actually exists. External links (http, https,
// mailto) and pure in-page anchors are skipped — the goal is catching moved
// or renamed files (ARCHITECTURE.md pointing at a deleted README), not
// auditing the internet. CI runs it via `make docs-check`, alongside the
// runnable Example functions, so stale documentation fails the build.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline Markdown links: [text](target). Reference-style
// definitions are rare in this repo and intentionally out of scope.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// codeRE matches the spans linkRE must not see: fenced code blocks and
// inline code, where "](...)" is code (an index-then-call, a regex), not a
// link.
var codeRE = regexp.MustCompile("(?s)```.*?```|`[^`\n]*`")

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, b := range broken {
		fmt.Fprintln(os.Stderr, "docscheck: broken link:", b)
	}
	if len(broken) > 0 {
		os.Exit(1)
	}
}

// check walks root for *.md files and returns one "file: target" entry per
// unresolvable relative link.
func check(root string) ([]string, error) {
	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, target := range extractLinks(string(data)) {
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, statErr := os.Stat(resolved); statErr != nil {
				broken = append(broken, fmt.Sprintf("%s: %s", path, target))
			}
		}
		return nil
	})
	return broken, err
}

// extractLinks returns the checkable relative targets of doc's inline links:
// code spans are stripped first (their "](...)" is not Markdown), external
// schemes and pure anchors are dropped, and any #anchor or ?query suffix is
// stripped from file targets.
func extractLinks(doc string) []string {
	doc = codeRE.ReplaceAllString(doc, "")
	var out []string
	for _, m := range linkRE.FindAllStringSubmatch(doc, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
			strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexAny(target, "#?"); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		out = append(out, target)
	}
	return out
}
