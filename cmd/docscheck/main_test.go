package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestExtractLinks(t *testing.T) {
	doc := "See [the map](ARCHITECTURE.md) and [contract](internal/adaptive/README.md#the-rep-contract).\n" +
		"External [paper](https://example.org/x.pdf), [mail](mailto:a@b.c), [anchor](#policy).\n" +
		"Empty anchor-only file part [x](#).\n" +
		"Code is not a link: `m.ranges[i](k)` and\n" +
		"```go\nv := a[0](x) // not [a](link) either\n```\n"
	got := extractLinks(doc)
	want := []string{"ARCHITECTURE.md", "internal/adaptive/README.md"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extractLinks = %v, want %v", got, want)
	}
}

func TestCheckFindsBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "docs")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "REAL.md"), []byte("# real"), 0o644); err != nil {
		t.Fatal(err)
	}
	md := "[ok](../REAL.md) [missing](../GONE.md) [web](https://example.org)"
	if err := os.WriteFile(filepath.Join(sub, "INDEX.md"), []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 {
		t.Fatalf("broken = %v, want exactly the GONE.md link", broken)
	}
}

// TestRepoDocsResolve runs the real check over the repository root, so `go
// test` catches broken doc links even without the make target.
func TestRepoDocsResolve(t *testing.T) {
	broken, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range broken {
		t.Errorf("broken link: %s", b)
	}
}
