// Command dego-bench regenerates the micro-benchmark figures of the paper
// (§6.2): Figure 6 (high contention), Figure 7 (update-ratio sweep) and
// Figure 8 (working-set sweep), plus the Pearson throughput/stall analysis.
//
// Usage:
//
//	dego-bench -fig 6 [-threads 1,5,10,20,40,80] [-duration 1s] [-pearson]
//	dego-bench -fig 7 [-ratios 25,50,75,100]
//	dego-bench -fig 8
//	dego-bench -fig hotrange
//	dego-bench -fig flat
//	dego-bench -fig all
//
// hotrange is the per-range directory evaluation: the skewed workload
// (hot-range updates, cold-range reads) under wholesale vs per-range
// promotion, swept over working-set scale. flat is the flat-family
// evaluation: the planner's open-addressing pick against the striped,
// segmented and sync.Map baselines over the same working-set axis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/adjusted-objects/dego/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dego-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dego-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 6, 7, 8, hotrange, flat, all or none (with -ablation)")
	threadsFlag := fs.String("threads", "1,5,10,20,40,80", "comma-separated thread counts")
	ratiosFlag := fs.String("ratios", "25,50,75,100", "update ratios for figure 7")
	duration := fs.Duration("duration", 500*time.Millisecond, "measured duration per point")
	warmup := fs.Duration("warmup", 100*time.Millisecond, "warm-up before each point")
	items := fs.Int("items", 16<<10, "initial items (paper: 16384)")
	keyRange := fs.Int("range", 32<<10, "key range (paper: 32768)")
	pearson := fs.Bool("pearson", false, "print Pearson(throughput, stalls) per object")
	ablation := fs.Bool("ablation", false, "also run the segmentation/padding/guard ablations")
	jsonPath := fs.String("json", "", "also write the raw figure sweep results as JSON to this file (CI artifact; -ablation output is print-only and not included)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	threads, err := parseInts(*threadsFlag)
	if err != nil {
		return fmt.Errorf("bad -threads: %w", err)
	}
	ratios, err := parseInts(*ratiosFlag)
	if err != nil {
		return fmt.Errorf("bad -ratios: %w", err)
	}

	cfg := bench.DefaultConfig()
	cfg.Duration = *duration
	cfg.Warmup = *warmup
	cfg.InitialItems = *items
	cfg.KeyRange = *keyRange

	figures := map[string]map[string]map[string][]bench.Result{}
	switch *fig {
	case "none":
	case "6":
		figures["figure6"] = bench.Figure6(os.Stdout, cfg, threads, *pearson)
	case "7":
		figures["figure7"] = bench.Figure7(os.Stdout, cfg, threads, ratios)
	case "8":
		figures["figure8"] = bench.Figure8(os.Stdout, cfg, threads)
	case "hotrange":
		figures["hotrange"] = bench.FigureHotRange(os.Stdout, cfg, threads)
	case "flat":
		figures["flat"] = bench.FigureFlat(os.Stdout, cfg, threads)
	case "all":
		figures["figure6"] = bench.Figure6(os.Stdout, cfg, threads, *pearson)
		figures["figure7"] = bench.Figure7(os.Stdout, cfg, threads, ratios)
		figures["figure8"] = bench.Figure8(os.Stdout, cfg, threads)
		figures["hotrange"] = bench.FigureHotRange(os.Stdout, cfg, threads)
		figures["flat"] = bench.FigureFlat(os.Stdout, cfg, threads)
	default:
		return fmt.Errorf("unknown figure %q (want 6, 7, 8, hotrange, flat or all)", *fig)
	}
	if *ablation {
		bench.Ablations(os.Stdout, cfg, threads)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, cfg, threads, figures); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
	}
	return nil
}

// writeJSON persists the raw sweep results. The CI bench-smoke job uploads
// the file as a workflow artifact, so harness bit-rot shows up as a missing
// or empty artifact even when the tables printed fine.
func writeJSON(path string, cfg bench.Config, threads []int,
	figures map[string]map[string]map[string][]bench.Result) error {
	blob, err := json.MarshalIndent(struct {
		// BaseConfig is the CLI configuration the figures started from, not
		// what every series ran with: figure sections override it (figure7
		// varies UpdateRatio, figure8 varies InitialItems/KeyRange — the
		// section titles name the override) and the swept thread count of
		// each point is in that Result's own Threads field, never in here.
		BaseConfig bench.Config
		Note       string
		Threads    []int
		Figures    map[string]map[string]map[string][]bench.Result
	}{cfg, "figure sections override BaseConfig (figure7: UpdateRatio; " +
		"figure8: InitialItems/KeyRange; see section titles); " +
		"per-point thread counts are in each Result.Threads",
		threads, figures}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("value %d must be positive", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
