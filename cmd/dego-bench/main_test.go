package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 5,10")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 10 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "0", "-3", "1,,2"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "42"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-threads", "x"}); err == nil {
		t.Fatal("bad threads accepted")
	}
}
