// Command igraph exposes the theory toolkit of §3-§4: it renders the
// indistinguishability graphs of Figure 2 (text or Graphviz DOT), the Table 1
// catalog of adjusted data types, the Figure 3 adjustment lattice (verified
// against Definition 1), and the scalability analyses (consensus number via
// Theorem 1, the Corollary 1 permissive check, the Proposition 1/2
// conflict-freedom predicates).
//
// Usage:
//
//	igraph -fig 2 [-dot]
//	igraph -fig 3
//	igraph -table 1
//	igraph -analyze C3   (any of C1..C3, S1..S3, Q1, R1, R2, M1, M2)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/adjusted-objects/dego/internal/igraph"
	"github.com/adjusted-objects/dego/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "igraph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("igraph", flag.ContinueOnError)
	fig := fs.String("fig", "", "figure to render: 2 or 3")
	table := fs.String("table", "", "table to render: 1")
	analyze := fs.String("analyze", "", "data type to analyze (C1..C3, S1..S3, Q1, R1, R2, M1, M2)")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text (figure 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	did := false
	if *fig == "2" {
		figure2(*dot)
		did = true
	}
	if *fig == "3" {
		if err := figure3(); err != nil {
			return err
		}
		did = true
	}
	if *table == "1" {
		table1()
		did = true
	}
	if *analyze != "" {
		if err := analyzeType(*analyze); err != nil {
			return err
		}
		did = true
	}
	if !did {
		figure2(false)
		if err := figure3(); err != nil {
			return err
		}
		table1()
	}
	return nil
}

// figure2 renders the three panels of Figure 2.
func figure2(dot bool) {
	r := spec.Ref(spec.R1)
	s := spec.Set(spec.S1)
	c := spec.Counter(spec.C1)
	panels := []struct {
		name string
		g    *igraph.Graph
	}{
		{"Reference", igraph.New([]*spec.Op{r.Op("set", 1), r.Op("set", 2), r.Op("get")}, r.Init)},
		{"Set", igraph.New([]*spec.Op{s.Op("add", 1), s.Op("add", 1), s.Op("contains", 1)}, s.Init)},
		{"Counter", igraph.New([]*spec.Op{c.Op("rmw", 1), c.Op("rmw", 3), c.Op("rmw", 5)}, c.Init)},
	}
	fmt.Println("=== Figure 2: indistinguishability graphs G({a,b,c}) ===")
	fmt.Println()
	for _, p := range panels {
		if dot {
			fmt.Println(p.g.DOT(p.name))
		} else {
			fmt.Println(p.g.Summary(p.name))
		}
	}
}

// figure3 renders and verifies the adjustment lattice.
func figure3() error {
	l := spec.Figure3()
	fmt.Println("=== Figure 3: adjustments (subtyping p/r, deletion d, access c/m) ===")
	fmt.Println()
	for _, e := range l.Edges {
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("\nverifying Definition 1 on every edge and path... ")
	if err := l.Verify(spec.DefaultCheckConfig()); err != nil {
		return err
	}
	fmt.Println("OK")
	fmt.Println()
	return nil
}

// table1 renders the catalog in the paper's Hoare-logic layout, then the
// computed per-type analyses.
func table1() {
	fmt.Println("=== Table 1: adjusted data types ===")
	fmt.Println()
	fmt.Print(spec.FormatTable1())
	fmt.Println()
	fmt.Println("Computed properties:")
	opts := igraph.DefaultSearchOpts()
	for _, dt := range spec.AllCatalogTypes() {
		cn := igraph.ConsensusNumber(dt, opts)
		cnStr := fmt.Sprintf("%d", cn.CN)
		if !cn.Exact {
			cnStr = fmt.Sprintf("≥%d", cn.CN)
		}
		fmt.Printf("%-4s ops=%v readable=%v permissive=%v CN=%s\n",
			dt.Name, dt.OpNames(), dt.Readable, igraph.Permissive(dt, opts), cnStr)
	}
	fmt.Println()
}

// analyzeType prints the full analysis of one catalog type.
func analyzeType(name string) error {
	var dt *spec.DataType
	for _, t := range spec.AllCatalogTypes() {
		if t.Name == name {
			dt = t
			break
		}
	}
	if dt == nil {
		return fmt.Errorf("unknown data type %q", name)
	}
	opts := igraph.DefaultSearchOpts()
	fmt.Printf("=== Analysis of %s ===\n\n", dt.Name)
	fmt.Printf("operations:        %v\n", dt.OpNames())
	fmt.Printf("readable:          %v\n", dt.Readable)
	cn := igraph.ConsensusNumber(dt, opts)
	fmt.Printf("consensus number:  %d (exact=%v)", cn.CN, cn.Exact)
	if cn.Witness != "" {
		fmt.Printf("  witness: %s", cn.Witness)
	}
	fmt.Println()
	fmt.Printf("permissive (Cor.1): %v\n", igraph.Permissive(dt, opts))
	fmt.Printf("D(2,l):            l=%d\n", igraph.Distinguish(dt, 2, opts))
	fmt.Printf("D(3,l):            l=%d\n", igraph.Distinguish(dt, 3, opts))
	fmt.Printf("conflict-free (Prop.2, |B|=2): %v\n", igraph.ConflictFreeLongLived(dt, opts))
	oneShot := opts
	oneShot.OneShot = true
	fmt.Printf("conflict-free one-shot (Prop.1, |B|=2): %v\n", igraph.ConflictFreeOneShot(dt, 2, oneShot))
	for _, opName := range dt.OpNames() {
		var gen *spec.Op
		switch {
		case dt.HasOp(opName):
			gen = dt.Op(opName, 1, 1)
		}
		fmt.Printf("  %-10s left-mover=%-5v right-mover=%v\n",
			opName, igraph.LeftMover(dt, gen, opts), igraph.RightMover(dt, gen, opts))
	}
	return nil
}
