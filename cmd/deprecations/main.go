// Command deprecations is a staticcheck-style sweep for the repository's
// own use of its deprecated constructors. It parses the public dego package
// for exported declarations whose doc comment carries a "Deprecated:"
// notice, then walks every Go file in the module and reports each use of
// one of those identifiers. The definitions themselves (dego.go, where the
// deprecated wrappers delegate to the profile API) are exempt. CI runs it
// via `make deprecations`, so a migration back to a deprecated constructor
// fails the build — the benches, backends, examples and tests must stay on
// the profile API.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	uses, err := sweep(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deprecations:", err)
		os.Exit(1)
	}
	for _, u := range uses {
		fmt.Fprintln(os.Stderr, "deprecations: deprecated constructor used:", u)
	}
	if len(uses) > 0 {
		fmt.Fprintln(os.Stderr, "deprecations: migrate the call sites to the profile API (see README.md)")
		os.Exit(1)
	}
	fmt.Println("deprecations: clean — no in-repo call site uses a deprecated constructor")
}

// sweep returns one "file:line: name" entry per use of a deprecated dego
// identifier outside its defining file.
func sweep(root string) ([]string, error) {
	deprecated, defFiles, err := deprecatedNames(root)
	if err != nil {
		return nil, err
	}
	if len(deprecated) == 0 {
		return nil, fmt.Errorf("no deprecated declarations found in the root package (sweep misconfigured?)")
	}
	var uses []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root {
				if name := d.Name(); strings.HasPrefix(name, ".") || name == "testdata" {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || defFiles[filepath.Clean(path)] {
			return nil
		}
		fileUses, err := usesIn(path, deprecated)
		if err != nil {
			return err
		}
		uses = append(uses, fileUses...)
		return nil
	})
	return uses, err
}

// deprecatedNames parses the root (public) package and collects the
// exported names whose declaration docs carry a "Deprecated:" notice, plus
// the set of files that declare them (exempt from the sweep).
func deprecatedNames(root string) (map[string]bool, map[string]bool, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, root, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, nil, err
	}
	names := map[string]bool{}
	defFiles := map[string]bool{}
	for _, pkg := range pkgs {
		for fileName, file := range pkg.Files {
			mark := func(doc *ast.CommentGroup, name string) {
				if doc == nil || !strings.Contains(doc.Text(), "Deprecated:") {
					return
				}
				names[name] = true
				defFiles[filepath.Clean(fileName)] = true
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.IsExported() {
						mark(d.Doc, d.Name.Name)
					}
				case *ast.GenDecl:
					// Each spec's own doc wins; the decl doc applies only
					// to specs without one (so one deprecated spec in a
					// grouped declaration neither taints nor loses its
					// siblings).
					for _, s := range d.Specs {
						ts, ok := s.(*ast.TypeSpec)
						if !ok || !ts.Name.IsExported() {
							continue
						}
						doc := ts.Doc
						if doc == nil {
							doc = d.Doc
						}
						mark(doc, ts.Name.Name)
					}
				}
			}
		}
	}
	return names, defFiles, nil
}

// degoImportPath is the module path of the public package the sweep
// guards.
const degoImportPath = "github.com/adjusted-objects/dego"

// usesIn reports each use of a deprecated dego identifier in path: either
// qualified through an import of the root dego package (dego.NewCounter),
// or bare inside the root package itself (its in-package tests). Internal
// packages may declare constructors with the same names (counter.NewAdder,
// ref.NewWriteOnce); those are the implementation layer the wrappers
// delegate to, not deprecated API, so selector uses through other packages
// are ignored.
func usesIn(path string, deprecated map[string]bool) ([]string, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	// Aliases under which this file imports the root dego package.
	degoAliases := map[string]bool{}
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) != degoImportPath {
			continue
		}
		alias := "dego"
		if imp.Name != nil {
			alias = imp.Name.Name
		}
		degoAliases[alias] = true
	}
	// Bare identifiers resolve to the deprecated declarations only inside
	// the root package itself (package dego, which only exists at the
	// module root).
	inRootPkg := file.Name.Name == "dego"

	var uses []string
	flag := func(id *ast.Ident) {
		pos := fset.Position(id.Pos())
		uses = append(uses, fmt.Sprintf("%s:%d: %s", pos.Filename, pos.Line, id.Name))
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if pkg, ok := x.X.(*ast.Ident); ok {
				if degoAliases[pkg.Name] && deprecated[x.Sel.Name] {
					flag(x.Sel)
				}
				return false // don't descend: Sel must not match as bare
			}
		case *ast.Ident:
			if inRootPkg && deprecated[x.Name] {
				flag(x)
			}
		}
		return true
	})
	return uses, nil
}
