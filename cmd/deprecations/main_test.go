package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsClean is `make deprecations` inside the test suite: no in-repo
// call site may use a deprecated constructor outside its defining file.
func TestRepoIsClean(t *testing.T) {
	uses, err := sweep("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range uses {
		t.Error("deprecated constructor used:", u)
	}
}

// TestFindsDeprecatedDeclarations guards the sweep against silently
// matching nothing (e.g. after a doc-comment reshuffle).
func TestFindsDeprecatedDeclarations(t *testing.T) {
	names, defFiles, err := deprecatedNames("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"NewCounter", "NewAdder", "NewAtomicCounter",
		"NewAdaptiveMap", "NewAdaptiveMapOn", "NewAdaptiveSkipListFenced",
		"NewSegmentedMap", "NewStripedMap", "NewSWMRMap",
		"NewSegmentedSet", "NewSegmentedSkipList", "NewConcurrentSkipList",
		"NewMPSCQueue", "NewMSQueue", "NewWriteOnce", "NewRCUBox", "NewAtomicRef",
	} {
		if !names[want] {
			t.Errorf("deprecated set is missing %s", want)
		}
	}
	if len(defFiles) == 0 {
		t.Error("no defining files recorded")
	}
}

// TestFlagsQualifiedAndBareUses: a dego-qualified use anywhere and a bare
// use inside the root package are both flagged; a same-named constructor of
// another package is not.
func TestFlagsQualifiedAndBareUses(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	deprecated := map[string]bool{"NewCounter": true}

	qualified := write("q.go", `package other
import "github.com/adjusted-objects/dego"
var _ = dego.NewCounter()
`)
	if uses, err := usesIn(qualified, deprecated); err != nil || len(uses) != 1 {
		t.Errorf("qualified use: uses=%v err=%v, want exactly one", uses, err)
	}

	bare := write("b.go", `package dego
var _ = NewCounter()
`)
	if uses, err := usesIn(bare, deprecated); err != nil || len(uses) != 1 {
		t.Errorf("bare in-package use: uses=%v err=%v, want exactly one", uses, err)
	}

	foreign := write("f.go", `package other
import "example.com/counter"
var _ = counter.NewCounter()
`)
	if uses, err := usesIn(foreign, deprecated); err != nil || len(uses) != 0 {
		t.Errorf("foreign same-named constructor flagged: uses=%v err=%v", uses, err)
	}
}
