// Command apidump renders the exported surface of the public dego package
// as a sorted, canonical text listing — one line per exported constant,
// variable, function, type and method, with unexported struct fields and
// function bodies elided. The committed snapshot (api/dego.txt) is the
// contract: `apidump -check api/dego.txt` (the `make api-check` target, run
// in CI) fails when the surface drifts from the snapshot, so every API
// change is a deliberate, reviewed regeneration (`make api`) rather than an
// accident.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "directory of the package to dump")
	check := flag.String("check", "", "golden file to compare against (exit 1 on drift)")
	flag.Parse()

	lines, err := dump(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
	out := strings.Join(lines, "\n") + "\n"

	if *check == "" {
		fmt.Print(out)
		return
	}
	golden, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
	if diff := diffLines(strings.Split(strings.TrimRight(string(golden), "\n"), "\n"), lines); len(diff) > 0 {
		fmt.Fprintf(os.Stderr, "apidump: public API surface drifted from %s:\n", *check)
		for _, d := range diff {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		fmt.Fprintln(os.Stderr, "apidump: if the change is intentional, regenerate with `make api`")
		os.Exit(1)
	}
}

// dump renders the exported API of the (non-test) package in dir.
func dump(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// declLines renders the exported lines of one top-level declaration.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d) {
			return nil
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		var lines []string
		for _, s := range d.Specs {
			switch spec := s.(type) {
			case *ast.TypeSpec:
				if !spec.Name.IsExported() {
					continue
				}
				cp := *spec
				cp.Doc, cp.Comment = nil, nil
				cp.Type = elideUnexported(cp.Type)
				assign := ""
				if spec.Assign != token.NoPos {
					assign = "= "
				}
				lines = append(lines, fmt.Sprintf("type %s%s %s%s",
					spec.Name.Name, typeParams(fset, spec.TypeParams), assign, render(fset, cp.Type)))
			case *ast.ValueSpec:
				for _, name := range spec.Names {
					if !name.IsExported() {
						continue
					}
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					typ := ""
					if spec.Type != nil {
						typ = " " + render(fset, spec.Type)
					}
					lines = append(lines, kind+" "+name.Name+typ)
				}
			}
		}
		return lines
	}
	return nil
}

// exportedRecv reports whether a method's receiver type is exported
// (free functions count as exported receivers).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// elideUnexported strips unexported fields from struct types and unexported
// methods from interface types, so internals can move without breaking the
// snapshot.
func elideUnexported(t ast.Expr) ast.Expr {
	switch x := t.(type) {
	case *ast.StructType:
		kept := &ast.FieldList{}
		for _, f := range x.Fields.List {
			var names []*ast.Ident
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, n)
				}
			}
			if len(names) > 0 || len(f.Names) == 0 && exportedEmbedded(f.Type) {
				kept.List = append(kept.List, &ast.Field{Names: names, Type: f.Type})
			}
		}
		return &ast.StructType{Struct: x.Struct, Fields: kept}
	case *ast.InterfaceType:
		kept := &ast.FieldList{}
		for _, m := range x.Methods.List {
			if len(m.Names) == 0 || m.Names[0].IsExported() {
				kept.List = append(kept.List, &ast.Field{Names: m.Names, Type: m.Type})
			}
		}
		return &ast.InterfaceType{Interface: x.Interface, Methods: kept}
	}
	return t
}

func exportedEmbedded(t ast.Expr) bool {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.SelectorExpr:
			return x.Sel.IsExported()
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// typeParams renders a type-parameter list like "[K comparable, V any]".
func typeParams(fset *token.FileSet, params *ast.FieldList) string {
	if params == nil || len(params.List) == 0 {
		return ""
	}
	var parts []string
	for _, f := range params.List {
		var names []string
		for _, n := range f.Names {
			names = append(names, n.Name)
		}
		parts = append(parts, strings.Join(names, ", ")+" "+renderBare(f.Type))
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// render prints an AST node on one line.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

func renderBare(node any) string { return render(token.NewFileSet(), node) }

// diffLines reports golden/current mismatches as +/- lines.
func diffLines(golden, current []string) []string {
	goldenSet := map[string]bool{}
	for _, l := range golden {
		goldenSet[l] = true
	}
	currentSet := map[string]bool{}
	for _, l := range current {
		currentSet[l] = true
	}
	var diff []string
	for _, l := range current {
		if !goldenSet[l] {
			diff = append(diff, "+ "+l)
		}
	}
	for _, l := range golden {
		if !currentSet[l] {
			diff = append(diff, "- "+l)
		}
	}
	return diff
}
