package main

import (
	"os"
	"strings"
	"testing"
)

// TestGoldenMatchesSurface is api-check inside the test suite: the
// committed snapshot must equal the rendered surface of the root package,
// so `go test ./...` catches undeclared API drift even where the Makefile
// target is not run.
func TestGoldenMatchesSurface(t *testing.T) {
	lines, err := dump("../..")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("../../api/dego.txt")
	if err != nil {
		t.Fatal(err)
	}
	diff := diffLines(strings.Split(strings.TrimRight(string(golden), "\n"), "\n"), lines)
	for _, d := range diff {
		t.Error(d)
	}
	if len(diff) > 0 {
		t.Fatal("api/dego.txt drifted from the exported surface; regenerate with `make api` if intentional")
	}
}

// TestDumpDeterministic: two dumps of the same tree are identical (sorted,
// canonical rendering).
func TestDumpDeterministic(t *testing.T) {
	a, err := dump("../..")
	if err != nil {
		t.Fatal(err)
	}
	b, err := dump("../..")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatal("dump output not deterministic")
	}
}

// TestSnapshotElidesInternals: wrapper structs keep their unexported fields
// out of the contract, so representation changes do not churn the snapshot.
func TestSnapshotElidesInternals(t *testing.T) {
	lines, err := dump("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if strings.Contains(l, "counterRep") || strings.Contains(l, "mapRep") {
			t.Errorf("snapshot leaked an unexported detail: %s", l)
		}
	}
}
