// Command dego-advise renders the tuning advisor's output: the per-table
// advice JSON that `retwis-bench -advise -json` writes (or a `DEBUG
// ADVISE` reply saved to a file) becomes a readable report — current plan,
// certified recommendation, ready-to-paste option expressions, evidence
// and counter-evidence, and whether each hand-tuned declaration was
// rediscovered.
//
// Usage:
//
//	dego-advise advise.json            # text report
//	dego-advise -json advise.json      # normalized JSON to stdout
//	retwis-bench -advise -json a.json && dego-advise a.json
//
// The input is either a JSON array of per-table advice objects (the
// retwis replay artifact) or a bare array of advice objects (the DEBUG
// ADVISE reply, one per server shard); the latter is rendered with
// shard indices as table names.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/adjusted-objects/dego"
	"github.com/adjusted-objects/dego/internal/retwis"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dego-advise:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dego-advise", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit normalized per-table advice JSON instead of the text report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want one argument: the advice JSON file (got %d)", fs.NArg())
	}
	path := fs.Arg(0)
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	tables, err := decode(blob)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}
	retwis.WriteAdviceReport(w, path, tables)
	return nil
}

// decode accepts both artifact shapes: the retwis replay's
// []TableAdvice, and DEBUG ADVISE's bare []dego.Advice (one per shard).
func decode(blob []byte) ([]retwis.TableAdvice, error) {
	var tables []retwis.TableAdvice
	if err := json.Unmarshal(blob, &tables); err == nil && tabled(tables) {
		return tables, nil
	}
	var advs []dego.Advice
	if err := json.Unmarshal(blob, &advs); err != nil {
		return nil, fmt.Errorf("neither a per-table advice array nor an advice array: %w", err)
	}
	tables = make([]retwis.TableAdvice, len(advs))
	for i, a := range advs {
		tables[i] = retwis.TableAdvice{Table: fmt.Sprintf("shard%d", i), Advice: a}
	}
	return tables, nil
}

// tabled reports whether the decode produced real table entries — a bare
// advice array also unmarshals into []TableAdvice, but with every Table
// name empty.
func tabled(tables []retwis.TableAdvice) bool {
	for _, t := range tables {
		if t.Table == "" {
			return false
		}
	}
	return len(tables) > 0
}
