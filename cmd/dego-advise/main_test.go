package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/adjusted-objects/dego"
	"github.com/adjusted-objects/dego/internal/advisor"
	"github.com/adjusted-objects/dego/internal/retwis"
)

func sampleAdvice() dego.Advice {
	return dego.Advice{
		Datatype: "Map",
		Current: advisor.Current{
			Datatype: "Map", Variant: "M1", Mode: "ALL", Rep: "LockedMap",
		},
		CommutingWriters: true,
		Options:          []string{"dego.CommutingWriters()"},
		Variant:          "M2",
		Mode:             "CWMR",
		Certified:        true,
		Evidence:         []string{"commuting-writers: every key written by exactly one thread"},
	}
}

func writeAdviceFile(t *testing.T, name string, v any) string {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRendersTableArtifact(t *testing.T) {
	path := writeAdviceFile(t, "tables.json", []retwis.TableAdvice{
		{Table: "followers", Declared: "(M2, CWMR)", Advice: sampleAdvice()},
	})
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{
		"## followers", "(M2, CWMR)", "dego.CommutingWriters()",
		"[certified]", "rediscovered",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRendersBareAdviceArrayAsShards(t *testing.T) {
	path := writeAdviceFile(t, "shards.json", []dego.Advice{sampleAdvice(), sampleAdvice()})
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"## shard0", "## shard1", "(M2, CWMR)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestJSONModeRoundTrips(t *testing.T) {
	path := writeAdviceFile(t, "tables.json", []retwis.TableAdvice{
		{Table: "followers", Declared: "(M2, CWMR)", Advice: sampleAdvice()},
	})
	var out strings.Builder
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var tables []retwis.TableAdvice
	if err := json.Unmarshal([]byte(out.String()), &tables); err != nil {
		t.Fatalf("re-emitted JSON does not parse: %v", err)
	}
	if len(tables) != 1 || tables[0].Table != "followers" || !tables[0].Rediscovered() {
		t.Fatalf("round trip lost data: %+v", tables)
	}
}

func TestRejectsNonAdviceInput(t *testing.T) {
	path := writeAdviceFile(t, "bad.json", map[string]int{"not": 1})
	if err := run([]string{path}, &strings.Builder{}); err == nil {
		t.Fatal("run accepted a non-array input")
	}
}
