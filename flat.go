package dego

import (
	"math/bits"
	"runtime"

	"github.com/adjusted-objects/dego/internal/flatmap"
)

// This file wraps the flat representation family (internal/flatmap) for
// the planner: preallocated, no-pointer, array-of-structs open-addressing
// tables for integer-keyed Map and Set, plus the flat counter. A profile
// plans FLAT when its key type has an integer kind and it declares
// Capacity(n) — the family preallocates, so a declared capacity is its
// construction contract — and asks for nothing only the node-based
// representations honor (WithHash, Stripes, Buckets, Adaptive, WithProbe).
//
// The wrappers carry the key codec: any integer-kind key type, named
// types included, is reinterpreted losslessly to uint64 (intKeyCodec in
// hash.go) and mixed inside the tables. This is why a flat plan needs no
// WithHash even for named key types — the table's probe sequence is its
// own hashing, there is no caller-pluggable hash point.

// flatShards sizes the shard array of a commuting flat map: enough shards
// that concurrent writers rarely meet (4× CPUs, rounded up to a power of
// two), few enough that the per-shard padding stays negligible next to a
// preallocated table.
func flatShards() int {
	n := runtime.GOMAXPROCS(0) * 4
	if n < 8 {
		n = 8
	}
	return 1 << bits.Len(uint(n-1))
}

// FlatMap is the commuting-writers flat map (M2 over CWMR profiles, M1
// over unrestricted ones): padded per-shard open-addressing tables, key
// and value inline in the slot array, backward-shift deletion, zero
// steady-state allocation within the declared capacity. Writers must
// commute under a commuting declaration; unrestricted profiles get the
// same structure with the shard locks doing the serialization.
type FlatMap[K comparable, V any] struct {
	m   *flatmap.Sharded[V]
	enc func(K) uint64
	dec func(uint64) K
}

func newFlatMap[K comparable, V any](enc func(K) uint64, dec func(uint64) K, capacity int) *FlatMap[K, V] {
	return &FlatMap[K, V]{m: flatmap.NewSharded[V](flatShards(), capacity), enc: enc, dec: dec}
}

// Put stores key → val (the handle is identity only; flat shards route by
// key).
func (m *FlatMap[K, V]) Put(_ *Handle, key K, val V) { m.m.Put(m.enc(key), val) }

// Get returns the value for key.
func (m *FlatMap[K, V]) Get(key K) (V, bool) { return m.m.Get(m.enc(key)) }

// Remove deletes key, reporting whether it was present.
func (m *FlatMap[K, V]) Remove(_ *Handle, key K) bool { return m.m.Remove(m.enc(key)) }

// Contains reports whether key is present.
func (m *FlatMap[K, V]) Contains(key K) bool { return m.m.Contains(m.enc(key)) }

// Len returns the entry count; weakly consistent across shards.
func (m *FlatMap[K, V]) Len() int { return m.m.Len() }

// Range iterates entries until f returns false; weakly consistent. f runs
// under a shard read lock and must not write the map.
func (m *FlatMap[K, V]) Range(f func(key K, val V) bool) {
	m.m.Range(func(k uint64, v V) bool { return f(m.dec(k), v) })
}

// FlatSWMRMap is the single-writer flat map (M2, SWMR): one open
// addressing table, the declared writer behind an uncontended write lock,
// readers probing the slot array under a shared read lock.
type FlatSWMRMap[K comparable, V any] struct {
	m   *flatmap.Map[V]
	enc func(K) uint64
	dec func(uint64) K
}

func newFlatSWMRMap[K comparable, V any](enc func(K) uint64, dec func(uint64) K,
	capacity int, checked bool) *FlatSWMRMap[K, V] {
	return &FlatSWMRMap[K, V]{m: flatmap.NewMap[V](capacity, checked), enc: enc, dec: dec}
}

// Put stores key → val. Declared-single-writer only.
func (m *FlatSWMRMap[K, V]) Put(h *Handle, key K, val V) { m.m.Put(h, m.enc(key), val) }

// Get returns the value for key. Any thread.
func (m *FlatSWMRMap[K, V]) Get(key K) (V, bool) { return m.m.Get(m.enc(key)) }

// Remove deletes key, reporting whether it was present. Declared-single-
// writer only.
func (m *FlatSWMRMap[K, V]) Remove(h *Handle, key K) bool { return m.m.Remove(h, m.enc(key)) }

// Contains reports whether key is present. Any thread.
func (m *FlatSWMRMap[K, V]) Contains(key K) bool { return m.m.Contains(m.enc(key)) }

// Len returns the entry count.
func (m *FlatSWMRMap[K, V]) Len() int { return m.m.Len() }

// Range iterates entries until f returns false. f runs under the read
// lock and must not write the map.
func (m *FlatSWMRMap[K, V]) Range(f func(key K, val V) bool) {
	m.m.Range(func(k uint64, v V) bool { return f(m.dec(k), v) })
}

// FlatSet is the commuting-writers flat set (S3 over CWMR profiles, S1
// over unrestricted ones): FlatMap's layout with zero-byte values, one
// key word per slot.
type FlatSet[K comparable] struct {
	s   *flatmap.Set
	enc func(K) uint64
	dec func(uint64) K
}

func newFlatSet[K comparable](enc func(K) uint64, dec func(uint64) K, capacity int) *FlatSet[K] {
	return &FlatSet[K]{s: flatmap.NewSet(flatShards(), capacity), enc: enc, dec: dec}
}

// Add inserts x.
func (s *FlatSet[K]) Add(_ *Handle, x K) { s.s.Add(s.enc(x)) }

// Remove deletes x, reporting whether it was present.
func (s *FlatSet[K]) Remove(_ *Handle, x K) bool { return s.s.Remove(s.enc(x)) }

// Contains reports membership.
func (s *FlatSet[K]) Contains(x K) bool { return s.s.Contains(s.enc(x)) }

// Len returns the element count; weakly consistent across shards.
func (s *FlatSet[K]) Len() int { return s.s.Len() }

// Range iterates elements until f returns false; weakly consistent. f
// runs under a shard read lock and must not write the set.
func (s *FlatSet[K]) Range(f func(x K) bool) {
	s.s.Range(func(k uint64) bool { return f(s.dec(k)) })
}

// FlatSWMRSet is the single-writer flat set (S2, SWMR).
type FlatSWMRSet[K comparable] struct {
	m   *flatmap.Map[struct{}]
	enc func(K) uint64
	dec func(uint64) K
}

func newFlatSWMRSet[K comparable](enc func(K) uint64, dec func(uint64) K,
	capacity int, checked bool) *FlatSWMRSet[K] {
	return &FlatSWMRSet[K]{m: flatmap.NewMap[struct{}](capacity, checked), enc: enc, dec: dec}
}

// Add inserts x. Declared-single-writer only.
func (s *FlatSWMRSet[K]) Add(h *Handle, x K) { s.m.Put(h, s.enc(x), struct{}{}) }

// Remove deletes x, reporting whether it was present. Declared-single-
// writer only.
func (s *FlatSWMRSet[K]) Remove(h *Handle, x K) bool { return s.m.Remove(h, s.enc(x)) }

// Contains reports membership. Any thread.
func (s *FlatSWMRSet[K]) Contains(x K) bool { return s.m.Contains(s.enc(x)) }

// Len returns the element count.
func (s *FlatSWMRSet[K]) Len() int { return s.m.Len() }

// Range iterates elements until f returns false. f runs under the read
// lock and must not write the set.
func (s *FlatSWMRSet[K]) Range(f func(x K) bool) {
	s.m.Range(func(k uint64, _ struct{}) bool { return f(s.dec(k)) })
}

// FlatCounter is the flat counter (C3): preallocated cache-line-padded
// atomic cells, a thread's increment one wait-free atomic add on its own
// line — no CAS retry (the Adder's loop exists to observe contention; a
// flat profile declared none worth observing) and no allocation, ever.
type FlatCounter = flatmap.Counter

// flatCounterRep adapts the flat counter to the planner's counter view
// (reads sum every cell, any thread).
type flatCounterRep struct{ c *flatmap.Counter }

func (r flatCounterRep) Inc(h *Handle)              { r.c.Inc(h) }
func (r flatCounterRep) Add(h *Handle, delta int64) { r.c.Add(h, delta) }
func (r flatCounterRep) Get(*Handle) int64          { return r.c.Sum() }
