package dego

// Public-API round trips for the tuning advisor: construct an object
// *unadjusted* but with WithUsageRecording, replay a workload shaped like
// a known adjustment, and check that Advise() hands back exactly that
// adjustment — then feed the recommended options into a fresh constructor
// and verify the planner certifies them. This is the tuning loop the
// option documents, end to end through the exported surface.

import (
	"strings"
	"testing"
)

// adviseReg builds a small registry with n handles for an advise replay.
func adviseReg(t *testing.T, n int) (*Registry, []*Handle) {
	t.Helper()
	reg := NewRegistry(n)
	hs := make([]*Handle, n)
	for i := range hs {
		hs[i] = reg.MustRegister()
	}
	return reg, hs
}

func TestAdviseRoundTripMapSingleWriter(t *testing.T) {
	reg, hs := adviseReg(t, 3)
	m, err := Map[string, int](On(reg), WithUsageRecording())
	if err != nil {
		t.Fatal(err)
	}
	w, r1, r2 := hs[0], hs[1], hs[2]
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 64; i++ {
		m.Put(w, keys[i%len(keys)], i)
	}
	_, _ = r1, r2 // keyed reads are handle-free in the public API
	for i := 0; i < 32; i++ {
		m.Get(keys[i%len(keys)])
	}

	a, ok := m.Advise()
	if !ok {
		t.Fatal("Advise: recorder missing despite WithUsageRecording")
	}
	if !a.SingleWriter || a.CommutingWriters {
		t.Fatalf("want SingleWriter recommendation, got %+v", a)
	}
	if !a.Certified {
		t.Fatalf("advice not certified: %s", a.CertError)
	}
	if a.Mode != "SWMR" {
		t.Fatalf("mode = %s, want SWMR", a.Mode)
	}

	// Close the loop: the recommended options must construct and certify.
	m2, err := Map[string, int](On(reg), SingleWriter(), Capacity(a.Capacity))
	if err != nil {
		t.Fatalf("recommended options rejected: %v", err)
	}
	if got := m2.Plan().Mode.String(); got != a.Mode {
		t.Fatalf("reconstructed mode = %s, want %s", got, a.Mode)
	}
}

func TestAdviseRoundTripCounterCommuting(t *testing.T) {
	reg, hs := adviseReg(t, 4)
	c, err := Counter(On(reg), WithUsageRecording())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Inc(hs[i%3]) // three writers, never reading the result
	}
	for i := 0; i < 10; i++ {
		c.Get(hs[3]) // one reader
	}

	a, ok := c.Advise()
	if !ok {
		t.Fatal("Advise: recorder missing")
	}
	if !a.Blind || !a.SingleReader {
		t.Fatalf("want Blind+SingleReader for a blind multi-writer single-reader counter, got %+v", a)
	}
	if !a.Certified || a.Mode != "CWSR" {
		t.Fatalf("want certified CWSR, got mode=%s certified=%v (%s)", a.Mode, a.Certified, a.CertError)
	}
	for _, opt := range []string{"dego.Blind()", "dego.SingleReader()"} {
		if !strings.Contains(strings.Join(a.Options, ", "), opt) {
			t.Fatalf("Options %v missing %s", a.Options, opt)
		}
	}

	c2, err := Counter(On(reg), Blind(), SingleReader())
	if err != nil {
		t.Fatalf("recommended options rejected: %v", err)
	}
	if got := c2.Plan().Mode.String(); got != "CWSR" {
		t.Fatalf("reconstructed mode = %s, want CWSR", got)
	}
}

func TestAdviseRoundTripRefWriteOnce(t *testing.T) {
	reg, hs := adviseReg(t, 2)
	r, err := Ref[string](nil, On(reg), WithUsageRecording())
	if err != nil {
		t.Fatal(err)
	}
	v := "config"
	if err := r.Set(hs[0], &v); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.Get(hs[1])
	}

	a, ok := r.Advise()
	if !ok {
		t.Fatal("Advise: recorder missing")
	}
	if !a.WriteOnce || !a.SingleWriter {
		t.Fatalf("want WriteOnce+SingleWriter for a set-once ref, got %+v", a)
	}
	if !a.Certified || a.Variant != "R2" {
		t.Fatalf("want certified R2, got variant=%s certified=%v", a.Variant, a.Certified)
	}

	r2, err := Ref[string](nil, On(reg), WriteOnce(), SingleWriter())
	if err != nil {
		t.Fatalf("recommended options rejected: %v", err)
	}
	if got := r2.Plan().Declared(); got != a.Declared() {
		t.Fatalf("reconstructed %s, advisor recommended %s", got, a.Declared())
	}
}

func TestAdviseWithoutRecordingReportsNotEnabled(t *testing.T) {
	m, err := Map[string, int]()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Advise(); ok {
		t.Fatal("Advise ok=true on an object built without WithUsageRecording")
	}
}

func TestAdviseOnFlatEligiblePlan(t *testing.T) {
	// WithUsageRecording must not break flat-family eligibility: a named
	// integer key with a declared capacity still plans flat, and the
	// recorder hashes through the integer codec without a WithHash.
	type UserID uint64
	reg, hs := adviseReg(t, 2)
	m, err := Map[UserID, string](On(reg), SingleWriter(), Capacity(64), WithUsageRecording())
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.Plan().Rep; !strings.Contains(rep, "Flat") {
		t.Fatalf("recording broke flat planning: rep=%s", rep)
	}
	for i := 0; i < 16; i++ {
		m.Put(hs[0], UserID(i), "x")
	}
	a, ok := m.Advise()
	if !ok {
		t.Fatal("Advise: recorder missing")
	}
	if !a.SingleWriter || !a.Certified {
		t.Fatalf("want certified SingleWriter on flat map, got %+v", a)
	}
	if !a.MatchesCurrent() {
		t.Fatalf("declared profile already optimal; MatchesCurrent should be true: %+v", a)
	}
}
